// lint-fixture-path: src/hero/fixture.cpp
void encode_obs_into(const State& s, std::vector<double>& out) {
  std::vector<double> scratch(4);  // allocating local in the hot path
  scratch[0] = s.x;
  out.push_back(scratch[0]);  // growth in a zero-alloc kernel
}
