// lint-fixture-path: src/hero/fixture.cpp
// Buffer formatting is fine; only direct terminal output is banned.
std::string format_id(int id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "veh-%d", id);
  return std::string(buf);
}
