// lint-fixture-path: src/hero/fixture.cpp
// Randomness goes through the seeded hero::Rng stream, never libc.
double jitter(hero::Rng& rng) { return rng.uniform(-0.1, 0.1); }
