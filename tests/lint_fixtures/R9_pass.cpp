// lint-fixture-path: src/hero/fixture.cpp
// Deterministic paths iterate sorted containers; order is part of results.
struct OptionStats {
  std::map<int, double> rewards_;
  double total() const {
    double sum = 0.0;
    for (const auto& kv : rewards_) sum += kv.second;
    return sum;
  }
};
