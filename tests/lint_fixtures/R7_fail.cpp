// lint-fixture-path: src/hero/fixture.cpp
void timed_section() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
