// lint-fixture-path: src/hero/fixture.cpp
// Concurrency goes through the shared pool, not ad-hoc threads.
void train_all(runtime::ThreadPool& pool) {
  pool.parallel_for(4, [](std::size_t) {});
}
