// lint-fixture-path: src/hero/fixture.cpp
// Locking goes through the annotated wrappers from common/sync.h.
struct Counter {
  void inc() {
    hero::MutexLock lock(mu_);
    ++n_;
  }
  hero::Mutex mu_;
  int n_ HERO_GUARDED_BY(mu_) = 0;
};
