// lint-fixture-path: src/hero/fixture.cpp
// Timing goes through obs so phase attribution sees every clock read.
void timed_section() {
  const std::uint64_t t0 = obs::now_us();
  (void)t0;
}
