// lint-fixture-path: src/hero/fixture.cpp
double jitter() {
  std::srand(time(nullptr));  // wall-clock seeding breaks determinism
  return static_cast<double>(std::rand()) / RAND_MAX;
}
