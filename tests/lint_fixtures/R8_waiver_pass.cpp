// lint-fixture-path: src/hero/fixture.cpp
// Exercises the inline waiver: the lint-allow comment must suppress R8 on
// exactly this line (and would be reviewed like a NOLINT in real code).
struct ExternalInterop {
  std::mutex raw_;  // lint-allow(R8): third-party API hands us a std::mutex
};
