// lint-fixture-path: src/hero/fixture.cpp
struct Counter {
  void inc() {
    std::lock_guard<std::mutex> lock(mu_);  // invisible to -Wthread-safety
    ++n_;
  }
  std::mutex mu_;
  int n_ = 0;
};
