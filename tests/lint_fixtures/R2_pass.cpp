// lint-fixture-path: src/hero/fixture.cpp
// *_into kernels write through preallocated spans; no growth, no locals
// that allocate.
void encode_obs_into(const State& s, std::vector<double>& out) {
  out[0] = s.x;
  out[1] = s.y;
  for (std::size_t i = 2; i < out.size(); ++i) out[i] = 0.0;
}
