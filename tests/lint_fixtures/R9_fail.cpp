// lint-fixture-path: src/hero/fixture.cpp
struct OptionStats {
  std::unordered_map<int, double> rewards_;
  double total() const {
    double sum = 0.0;
    // Hash-order iteration: sum is fine, but anything order-sensitive
    // (tie-breaking, first-match, output order) silently diverges.
    for (const auto& kv : rewards_) sum += kv.second;
    return sum;
  }
};
