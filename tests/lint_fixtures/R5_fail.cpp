// lint-fixture-path: src/hero/fixture.cpp
void train_all() {
  std::thread t([] {});
  t.join();
}
