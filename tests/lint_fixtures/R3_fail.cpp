// lint-fixture-path: src/hero/fixture.cpp
void report(int id) {
  std::printf("vehicle %d\n", id);
  std::cout << "done";
}
