// lint-fixture-path: src/sim/fixture.cpp
// Batch step and the shared sensing kernels write into scratch sized at
// construction (or grown only when the scene outgrows every earlier build).
void BatchLaneWorld::step_lane(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) positions_[i] += velocities_[i];
}
int SpatialIndex::query(double x0, double behind, double ahead, int exclude,
                        const int** out_ids) const {
  int m = 0;
  for (int i = 0; i < n_; ++i) {
    if (i != exclude) cand_[static_cast<std::size_t>(m++)] = i;
  }
  *out_ids = cand_.data();
  return m;
}
