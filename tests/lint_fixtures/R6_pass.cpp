// lint-fixture-path: src/sim/fixture.cpp
// Batch step writes into scratch sized at construction.
void BatchLaneWorld::step_lane(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) positions_[i] += velocities_[i];
}
