// Tests for the LaneWorld multi-agent environment: reset/step semantics,
// collision detection, rewards, observations, domain-shift machinery and the
// scenario builders.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace hero::sim {
namespace {

LaneWorldConfig tiny_world(int learners, bool with_plodder) {
  LaneWorldConfig cfg;
  cfg.track = {8.0, 0.35, 2};
  cfg.dt = 0.5;
  cfg.max_steps = 10;
  for (int i = 0; i < learners; ++i) {
    VehicleSpec s;
    s.start_lane = 0;
    s.start_x = 1.0 * i;
    s.start_speed = 0.1;
    cfg.specs.push_back(s);
  }
  if (with_plodder) {
    VehicleSpec s;
    s.start_lane = 0;
    s.start_x = 1.0 * learners + 1.0;
    s.scripted = true;
    s.scripted_speed = 0.04;
    cfg.specs.push_back(s);
  }
  return cfg;
}

TEST(LaneWorld, LearnerBookkeeping) {
  LaneWorld w(tiny_world(2, true));
  EXPECT_EQ(w.num_vehicles(), 3);
  EXPECT_EQ(w.num_learners(), 2);
  EXPECT_EQ(w.learners(), (std::vector<int>{0, 1}));
}

TEST(LaneWorld, ResetPlacesVehiclesPerSpec) {
  LaneWorld w(tiny_world(2, false));
  Rng rng(1);
  w.reset(rng);
  EXPECT_NEAR(w.vehicle(0).state().x, 0.0, 1e-12);
  EXPECT_NEAR(w.vehicle(1).state().x, 1.0, 1e-12);
  EXPECT_EQ(w.lane(0), 0);
  EXPECT_EQ(w.steps(), 0);
  EXPECT_FALSE(w.done());
}

TEST(LaneWorld, ResetJitterStaysWithinBounds) {
  auto cfg = tiny_world(1, false);
  cfg.specs[0].start_x = 4.0;
  cfg.specs[0].start_x_jitter = 0.5;
  LaneWorld w(cfg);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    w.reset(rng);
    EXPECT_GE(w.vehicle(0).state().x, 3.5 - 1e-9);
    EXPECT_LE(w.vehicle(0).state().x, 4.5 + 1e-9);
  }
}

TEST(LaneWorld, StepMovesVehiclesAndAccumulatesTravel) {
  LaneWorld w(tiny_world(1, false));
  Rng rng(3);
  w.reset(rng);
  auto r = w.step({{0.1, 0.0}}, rng);
  EXPECT_NEAR(r.travel[0], 0.05, 1e-12);
  EXPECT_NEAR(w.total_travel(0), 0.05, 1e-12);
  EXPECT_EQ(w.steps(), 1);
  EXPECT_FALSE(r.collision);
}

TEST(LaneWorld, ScriptedVehicleDrivesItself) {
  LaneWorld w(tiny_world(1, true));
  Rng rng(4);
  w.reset(rng);
  const double x0 = w.vehicle(1).state().x;
  (void)w.step({{0.1, 0.0}}, rng);
  EXPECT_NEAR(w.vehicle(1).state().x - x0, 0.04 * 0.5, 1e-12);
}

TEST(LaneWorld, EndsAtMaxSteps) {
  LaneWorld w(tiny_world(1, false));
  Rng rng(5);
  w.reset(rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(w.done());
    (void)w.step({{0.1, 0.0}}, rng);
  }
  EXPECT_TRUE(w.done());
  EXPECT_THROW(w.step({{0.1, 0.0}}, rng), std::logic_error);
}

TEST(LaneWorld, RearEndCollisionDetected) {
  auto cfg = tiny_world(1, true);
  cfg.specs[1].start_x = 0.5;  // plodder only half a metre ahead
  LaneWorld w(cfg);
  Rng rng(6);
  w.reset(rng);
  bool collided = false;
  while (!w.done()) {
    auto r = w.step({{0.2, 0.0}}, rng);
    if (r.collision) {
      collided = true;
      EXPECT_EQ(r.collided.size(), 2u);  // both vehicles involved
      EXPECT_TRUE(r.done);
    }
  }
  EXPECT_TRUE(collided);
  EXPECT_TRUE(w.had_collision());
}

TEST(LaneWorld, CollisionAcrossWrapBoundary) {
  auto cfg = tiny_world(1, true);
  cfg.specs[0].start_x = 7.9;   // learner just before the wrap
  cfg.specs[1].start_x = 0.15;  // plodder just after it
  LaneWorld w(cfg);
  Rng rng(7);
  w.reset(rng);
  auto r = w.step({{0.2, 0.0}}, rng);
  EXPECT_TRUE(r.collision);
}

TEST(LaneWorld, OffRoadCountsAsCollision) {
  LaneWorld w(tiny_world(1, false));
  Rng rng(8);
  w.reset(rng);
  bool failed = false;
  // Steer hard right, off the road.
  while (!w.done()) {
    auto r = w.step({{0.2, -0.6}}, rng);
    failed = failed || r.collision;
  }
  EXPECT_TRUE(failed);
}

TEST(LaneWorld, OffRoadCanBeDisabled) {
  auto cfg = tiny_world(1, false);
  cfg.offroad_is_collision = false;
  LaneWorld w(cfg);
  Rng rng(9);
  w.reset(rng);
  while (!w.done()) {
    auto r = w.step({{0.2, -0.6}}, rng);
    EXPECT_FALSE(r.collision);
  }
}

TEST(LaneWorld, RewardFormula) {
  auto cfg = tiny_world(1, false);
  cfg.alpha = 0.7;
  LaneWorld w(cfg);
  Rng rng(10);
  w.reset(rng);
  auto r = w.step({{0.2, 0.0}}, rng);
  // No collision: r = (1−α)·travel/travel_norm = 0.3·(0.1/0.1) = 0.3.
  EXPECT_NEAR(r.reward[0], 0.3, 1e-9);
}

TEST(LaneWorld, CollisionRewardDominates) {
  auto cfg = tiny_world(1, true);
  cfg.specs[1].start_x = 0.32;  // nearly touching
  LaneWorld w(cfg);
  Rng rng(11);
  w.reset(rng);
  auto r = w.step({{0.2, 0.0}}, rng);
  ASSERT_TRUE(r.collision);
  // α·(−20) + (1−α)·travel ⇒ strongly negative.
  EXPECT_LT(r.reward[0], -13.0);
}

TEST(LaneWorld, SharedTravelAveragesTeam) {
  auto cfg = tiny_world(2, false);
  cfg.specs[1].start_x = 4.0;
  cfg.shared_travel = true;
  LaneWorld w(cfg);
  Rng rng(12);
  w.reset(rng);
  auto r = w.step({{0.2, 0.0}, {0.04, 0.0}}, rng);
  EXPECT_NEAR(r.reward[0], r.reward[1], 1e-12);
  // mean travel = (0.1 + 0.02)/2 = 0.06 → 0.3·0.6
  EXPECT_NEAR(r.reward[0], 0.3 * 0.6, 1e-9);
}

TEST(LaneWorld, IndividualTravelWhenNotShared) {
  auto cfg = tiny_world(2, false);
  cfg.specs[1].start_x = 4.0;
  cfg.shared_travel = false;
  LaneWorld w(cfg);
  Rng rng(13);
  w.reset(rng);
  auto r = w.step({{0.2, 0.0}, {0.04, 0.0}}, rng);
  EXPECT_GT(r.reward[0], r.reward[1]);
}

TEST(LaneWorld, HighLevelObsLayout) {
  LaneWorld w(tiny_world(1, true));
  Rng rng(14);
  w.reset(rng);
  auto obs = w.high_level_obs(0);
  EXPECT_EQ(obs.size(), w.high_level_obs_dim());
  const std::size_t n_beams = obs.size() - 2;
  EXPECT_EQ(n_beams, static_cast<std::size_t>(w.config().lidar.num_beams));
  // speed / max_speed, then lane id.
  EXPECT_NEAR(obs[n_beams], 0.1 / w.config().vehicle.max_speed, 1e-12);
  EXPECT_NEAR(obs[n_beams + 1], 0.0, 1e-12);
}

TEST(LaneWorld, LowLevelObsLayout) {
  LaneWorld w(tiny_world(1, false));
  Rng rng(15);
  w.reset(rng);
  auto obs = w.low_level_obs(0, 1);
  EXPECT_EQ(obs.size(), w.low_level_obs_dim());
  EXPECT_EQ(obs.size(), kLaneCameraDim + 2);
}

TEST(LaneWorld, WrongCommandCountThrows) {
  LaneWorld w(tiny_world(2, false));
  Rng rng(16);
  w.reset(rng);
  EXPECT_THROW(w.step({{0.1, 0.0}}, rng), std::logic_error);
}

TEST(LaneWorld, MeanSpeed) {
  LaneWorld w(tiny_world(1, false));
  Rng rng(17);
  w.reset(rng);
  (void)w.step({{0.1, 0.0}}, rng);
  (void)w.step({{0.2, 0.0}}, rng);
  EXPECT_NEAR(w.mean_speed(0), 0.15, 1e-9);
}

// ------------------------------------------------------- domain shift -----

TEST(LaneWorld, LatencyDelaysCommands) {
  auto cfg = tiny_world(1, false);
  cfg.actuation_latency = 2;
  LaneWorld w(cfg);
  Rng rng(18);
  w.reset(rng);
  // While the queue fills, the vehicle holds its initial speed (0.1).
  auto r1 = w.step({{0.2, 0.0}}, rng);
  EXPECT_NEAR(r1.travel[0], 0.05, 1e-12);
  auto r2 = w.step({{0.2, 0.0}}, rng);
  EXPECT_NEAR(r2.travel[0], 0.05, 1e-12);
  // Third step executes the first queued command.
  auto r3 = w.step({{0.04, 0.0}}, rng);
  EXPECT_NEAR(r3.travel[0], 0.10, 1e-12);
}

TEST(LaneWorld, ParamJitterPerturbsDynamicsPerEpisode) {
  auto cfg = tiny_world(1, false);
  cfg.param_jitter = 0.2;
  LaneWorld w(cfg);
  Rng rng(19);
  std::vector<double> travels;
  for (int ep = 0; ep < 5; ++ep) {
    w.reset(rng);
    auto r = w.step({{0.1, 0.0}}, rng);
    travels.push_back(r.travel[0]);
  }
  // Speed-gain jitter must make episodes differ.
  bool all_same = true;
  for (double t : travels) all_same = all_same && std::abs(t - travels[0]) < 1e-12;
  EXPECT_FALSE(all_same);
}

TEST(LaneWorld, RealWorldShiftEnablesAllKnobs) {
  auto cfg = with_real_world_shift(tiny_world(1, false));
  EXPECT_GT(cfg.lidar.noise_stddev, 0.0);
  EXPECT_GT(cfg.camera.noise_stddev, 0.0);
  EXPECT_GT(cfg.actuation_noise, 0.0);
  EXPECT_GE(cfg.actuation_latency, 1);
  EXPECT_GT(cfg.param_jitter, 0.0);
}

TEST(LaneWorld, NoNoiseMeansDeterministicStep) {
  LaneWorld w(tiny_world(1, false));
  Rng rng1(20), rng2(21);  // different RNGs
  w.reset(rng1);
  auto ra = w.step({{0.1, 0.05}}, rng1);
  LaneWorld w2(tiny_world(1, false));
  w2.reset(rng2);
  auto rb = w2.step({{0.1, 0.05}}, rng2);
  EXPECT_DOUBLE_EQ(ra.travel[0], rb.travel[0]);
  EXPECT_DOUBLE_EQ(w.vehicle(0).state().y, w2.vehicle(0).state().y);
}

// ----------------------------------------------------------- scenarios ----

TEST(Scenario, CooperativeLaneChangeLayout) {
  auto sc = cooperative_lane_change();
  ASSERT_EQ(sc.config.specs.size(), 4u);
  EXPECT_FALSE(sc.config.specs[0].scripted);
  EXPECT_FALSE(sc.config.specs[1].scripted);
  EXPECT_FALSE(sc.config.specs[2].scripted);
  EXPECT_TRUE(sc.config.specs[3].scripted);
  // The merger starts in lane 0, behind the plodder.
  EXPECT_EQ(sc.config.specs[sc.merger_index].start_lane, 0);
  EXPECT_EQ(sc.merger_target_lane, 1);
  EXPECT_LT(sc.config.specs[sc.merger_index].start_x, sc.config.specs[3].start_x);
}

TEST(Scenario, ScalesToMoreLearners) {
  auto sc = cooperative_lane_change(5);
  LaneWorld w(sc.config);
  EXPECT_EQ(w.num_learners(), 5);
  EXPECT_EQ(w.num_vehicles(), 6);
  Rng rng(22);
  w.reset(rng);
  // No vehicle starts in collision.
  auto r = w.step(std::vector<TwistCmd>(5, {0.04, 0.0}), rng);
  EXPECT_FALSE(r.collision);
}

TEST(Scenario, SkillWorldIsSingleVehicle) {
  LaneWorld w(skill_training_world(false));
  EXPECT_EQ(w.num_vehicles(), 1);
  LaneWorld w2(skill_training_world(true));
  EXPECT_EQ(w2.num_vehicles(), 2);
  EXPECT_EQ(w2.num_learners(), 1);
}

TEST(Scenario, BlockedMergerCollidesIfNobodyActs) {
  // The scenario must create real pressure: full speed ahead ⇒ rear-end.
  auto sc = cooperative_lane_change();
  LaneWorld w(sc.config);
  Rng rng(23);
  int collisions = 0;
  for (int ep = 0; ep < 10; ++ep) {
    w.reset(rng);
    while (!w.done()) {
      auto r = w.step(std::vector<TwistCmd>(3, {0.14, 0.0}), rng);
      if (r.collision) ++collisions;
    }
  }
  EXPECT_GE(collisions, 8);
}

}  // namespace
}  // namespace hero::sim
