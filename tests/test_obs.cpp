// Unit tests for the observability layer (src/obs): metrics registry
// semantics, histogram percentiles, trace span nesting and export, and the
// JSONL telemetry stream.
//
// The obs subsystems are process-global and default-disabled; each test
// that enables one restores the disabled state on exit so the suites stay
// independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hero::obs {
namespace {

// Enables metrics and/or tracing for one test body; restores the
// all-disabled default (and clears recorded state) on destruction.
struct ObsGuard {
  explicit ObsGuard(bool metrics, bool trace = false) {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
  }
  ~ObsGuard() {
    set_metrics_enabled(false);
    set_trace_enabled(false);
    Registry::instance().reset_values();
    TraceRecorder::instance().clear();
  }
};

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ Registry ----

TEST(Metrics, DisabledCallsAreNoOps) {
  ObsGuard guard(/*metrics=*/false);
  auto& c = Registry::instance().counter("test.disabled.counter");
  auto& g = Registry::instance().gauge("test.disabled.gauge");
  auto& h = Registry::instance().histogram("test.disabled.hist");
  c.reset();
  c.inc(5);
  g.set(3.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, CounterAndGaugeBasics) {
  ObsGuard guard(/*metrics=*/true);
  auto& c = Registry::instance().counter("test.basic.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);

  auto& g = Registry::instance().gauge("test.basic.gauge");
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(Metrics, FindOrCreateReturnsSameInstance) {
  ObsGuard guard(/*metrics=*/true);
  auto& a = Registry::instance().counter("test.same.counter");
  auto& b = Registry::instance().counter("test.same.counter");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  EXPECT_EQ(b.value(), 7);
}

TEST(Metrics, ConcurrentCounterIncrements) {
  ObsGuard guard(/*metrics=*/true);
  auto& c = Registry::instance().counter("test.concurrent.counter");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kIncs);
}

TEST(Metrics, ConcurrentRegistrationIsSafe) {
  ObsGuard guard(/*metrics=*/true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        Registry::instance()
            .counter("test.reg.race." + std::to_string(i % 10))
            .inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(
        Registry::instance().counter("test.reg.race." + std::to_string(i)).value(),
        40);
  }
}

// ----------------------------------------------------------- Histogram ----

TEST(Histogram, LinearPercentilesAndMoments) {
  ObsGuard guard(/*metrics=*/true);
  HistogramOptions opt;
  opt.lo = 0.0;
  opt.hi = 100.0;
  opt.buckets = 100;  // unit-width buckets: percentile error < 1
  opt.log_scale = false;
  auto& h = Registry::instance().histogram("test.hist.linear", opt);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.5);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Histogram, LogScaleSpansDecades) {
  ObsGuard guard(/*metrics=*/true);
  HistogramOptions opt;  // defaults: 1e-3 .. 1e9, log
  auto& h = Registry::instance().histogram("test.hist.log", opt);
  for (int i = 0; i < 100; ++i) h.observe(10.0);
  h.observe(1e6);
  EXPECT_EQ(h.count(), 101u);
  // Mass sits at 10; the p50 estimate must land in the same bucket
  // (log-bucket width is a factor of ~1.8 at 48 buckets over 12 decades).
  EXPECT_NEAR(std::log10(h.percentile(50)), 1.0, 0.3);
  EXPECT_GT(h.percentile(99.9), 1e5);
}

TEST(Histogram, OutOfRangeSaturatesNotLost) {
  ObsGuard guard(/*metrics=*/true);
  HistogramOptions opt;
  opt.lo = 1.0;
  opt.hi = 10.0;
  opt.buckets = 9;
  opt.log_scale = false;
  auto& h = Registry::instance().histogram("test.hist.overflow", opt);
  h.observe(-5.0);   // below lo → first bucket
  h.observe(1e9);    // above hi → overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 10u);  // 9 regular + overflow
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 1u);
}

TEST(Histogram, ResetClears) {
  ObsGuard guard(/*metrics=*/true);
  auto& h = Registry::instance().histogram("test.hist.reset");
  h.observe(5.0);
  h.observe(std::nan(""));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.dropped_nan(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, NanSamplesAreCountedNotSilentlyDropped) {
  ObsGuard guard(/*metrics=*/true);
  auto& h = Registry::instance().histogram("test.hist.nan");
  h.observe(2.0);
  h.observe(std::nan(""));
  h.observe(std::nan(""));
  // NaN never lands in a bucket or perturbs the moments…
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  // …but the drops are visible, in the API and in the JSON snapshot.
  EXPECT_EQ(h.dropped_nan(), 2u);
  const std::string json = Registry::instance().snapshot_json();
  EXPECT_NE(json.find("\"dropped_nan\": 2"), std::string::npos) << json;
}

// ------------------------------------------------------------ Snapshot ----

TEST(Metrics, SnapshotJsonContainsAllSections) {
  ObsGuard guard(/*metrics=*/true);
  Registry::instance().counter("test.snap.counter").inc(3);
  Registry::instance().gauge("test.snap.gauge").set(2.5);
  auto& h = Registry::instance().histogram("test.snap.hist");
  for (int i = 0; i < 10; ++i) h.observe(100.0);

  const std::string json = Registry::instance().snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
}

TEST(Metrics, WriteJsonRoundTripsToFile) {
  ObsGuard guard(/*metrics=*/true);
  Registry::instance().counter("test.write.counter").inc();
  const std::string path = temp_path("hero_obs_metrics_test.json");
  ASSERT_TRUE(Registry::instance().write_json(path));
  const std::string body = slurp(path);
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("test.write.counter"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Metrics, ResetValuesKeepsRegistrations) {
  ObsGuard guard(/*metrics=*/true);
  auto& c = Registry::instance().counter("test.resetvals.counter");
  c.inc(9);
  const std::size_t before = Registry::instance().size();
  Registry::instance().reset_values();
  EXPECT_EQ(Registry::instance().size(), before);
  EXPECT_EQ(c.value(), 0);
}

// --------------------------------------------------------------- Spans ----

TEST(Spans, DisabledSpanRecordsNothing) {
  ObsGuard guard(/*metrics=*/false, /*trace=*/false);
  const std::size_t before = TraceRecorder::instance().size();
  { OBS_SPAN("test/disabled"); }
  EXPECT_EQ(TraceRecorder::instance().size(), before);
}

TEST(Spans, NestedSpansAreContained) {
  ObsGuard guard(/*metrics=*/false, /*trace=*/true);
  TraceRecorder::instance().clear();
  {
    OBS_SPAN("test/outer");
    {
      OBS_SPAN("test/inner");
    }
  }
  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner closes (and records) first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "test/inner");
  EXPECT_EQ(outer.name, "test/outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST(Spans, FeedLatencyHistogramWhenMetricsEnabled) {
  ObsGuard guard(/*metrics=*/true, /*trace=*/false);
  { OBS_SPAN("test/latency"); }
  { OBS_SPAN("test/latency"); }
  EXPECT_EQ(Registry::instance().histogram("span.test/latency").count(), 2u);
}

TEST(Spans, ChromeTraceExportIsWellFormed) {
  ObsGuard guard(/*metrics=*/false, /*trace=*/true);
  TraceRecorder::instance().clear();
  {
    OBS_SPAN("test/export/parent");
    OBS_SPAN("test/export/child");
  }
  const std::string path = temp_path("hero_obs_trace_test.json");
  ASSERT_TRUE(TraceRecorder::instance().write_chrome_trace(path));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("test/export/parent"), std::string::npos);
  EXPECT_NE(body.find("test/export/child"), std::string::npos);
  EXPECT_NE(body.find("\"pid\""), std::string::npos);
  EXPECT_NE(body.find("\"tid\""), std::string::npos);
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
  std::filesystem::remove(path);
}

TEST(Spans, CapacityDropsAreCounted) {
  ObsGuard guard(/*metrics=*/false, /*trace=*/true);
  TraceRecorder::instance().clear();
  TraceRecorder::instance().set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    OBS_SPAN("test/capped");
  }
  EXPECT_EQ(TraceRecorder::instance().size(), 3u);
  EXPECT_EQ(TraceRecorder::instance().dropped(), 2u);
  TraceRecorder::instance().set_capacity(1u << 20);
}

// ----------------------------------------------------------- Telemetry ----

TEST(Telemetry, StreamsJsonlWithSchemaFields) {
  const std::string path = temp_path("hero_obs_telemetry_test.jsonl");
  ASSERT_TRUE(Telemetry::instance().open(path));
  EXPECT_TRUE(telemetry_enabled());

  Telemetry::instance().emit(TelemetryEvent("unit/a")
                                 .field("i", 7)
                                 .field("x", 2.5)
                                 .field("flag", true)
                                 .field("label", "merge \"fast\"\n"));
  Telemetry::instance().emit(
      TelemetryEvent("unit/b").field("nan_value", std::nan("")));
  Telemetry::instance().close();
  EXPECT_FALSE(telemetry_enabled());

  std::ifstream f(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  EXPECT_EQ(lines[0].find("{\"event\": \"unit/a\", \"t_s\": "), 0u);
  EXPECT_NE(lines[0].find("\"i\": 7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"x\": 2.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"flag\": true"), std::string::npos);
  // Embedded quotes and newline must arrive escaped, keeping one event per line.
  EXPECT_NE(lines[0].find("\"label\": \"merge \\\"fast\\\"\\n\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"nan_value\": null"), std::string::npos);

  // Sequence numbers are appended at write time and increase monotonically.
  const auto seq_of = [](const std::string& line) {
    const auto pos = line.rfind("\"seq\": ");
    EXPECT_NE(pos, std::string::npos) << line;
    return std::stoll(line.substr(pos + 7));
  };
  EXPECT_LT(seq_of(lines[0]), seq_of(lines[1]));
  for (const auto& line : lines) EXPECT_EQ(line.back(), '}');
  std::filesystem::remove(path);
}

TEST(Telemetry, EmitWithoutSinkIsNoOp) {
  ASSERT_FALSE(telemetry_enabled());
  const auto before = Telemetry::instance().lines_written();
  Telemetry::instance().emit(TelemetryEvent("unit/dropped").field("x", 1));
  EXPECT_EQ(Telemetry::instance().lines_written(), before);
}

TEST(Telemetry, ConcurrentEmittersKeepLinesIntact) {
  const std::string path = temp_path("hero_obs_telemetry_mt_test.jsonl");
  ASSERT_TRUE(Telemetry::instance().open(path));
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        Telemetry::instance().emit(
            TelemetryEvent("unit/mt").field("thread", t).field("i", i));
      }
    });
  }
  for (auto& t : threads) t.join();
  Telemetry::instance().close();

  std::ifstream f(path);
  int count = 0;
  long long prev_seq = -1;
  for (std::string line; std::getline(f, line); ++count) {
    ASSERT_EQ(line.find("{\"event\": \"unit/mt\""), 0u) << line;
    ASSERT_EQ(line.back(), '}') << line;
    const auto pos = line.rfind("\"seq\": ");
    ASSERT_NE(pos, std::string::npos);
    const long long seq = std::stoll(line.substr(pos + 7));
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
  }
  EXPECT_EQ(count, kThreads * kLines);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hero::obs
