// Equivalence tests for the fused zero-allocation kernels against naive
// reference implementations, plus an end-to-end check that the
// workspace-based Mlp forward/backward matches a hand-rolled reference
// network built from the same weights. Tolerances are 1e-12: the fused
// kernels must be numerically equivalent, not merely close.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/grad_check.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/mlp.h"

namespace hero::nn {
namespace {

constexpr double kTol = 1e-12;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal(0.0, 1.0);
  }
  return m;
}

void expect_near(const Matrix& a, const Matrix& b, double tol = kTol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << ", " << j << ")";
    }
  }
}

// ------------------------------------------------------ fused kernels ----

TEST(FusedKernels, MatmulIntoMatchesMatmul) {
  Rng rng(7);
  Matrix a = random_matrix(5, 9, rng);
  Matrix b = random_matrix(9, 4, rng);
  Matrix out;
  a.matmul_into(b, out);
  expect_near(out, a.matmul(b));
}

TEST(FusedKernels, MatmulIntoAccumulates) {
  Rng rng(7);
  Matrix a = random_matrix(3, 6, rng);
  Matrix b = random_matrix(6, 5, rng);
  Matrix seed = random_matrix(3, 5, rng);
  Matrix out = seed;
  a.matmul_into(b, out, /*accumulate=*/true);
  expect_near(out, seed + a.matmul(b));
}

TEST(FusedKernels, MatmulTransAIntoMatchesExplicitTranspose) {
  Rng rng(11);
  Matrix a = random_matrix(8, 3, rng);  // (m, k): contract over m
  Matrix b = random_matrix(8, 5, rng);  // (m, n)
  Matrix out;
  a.matmul_transA_into(b, out);
  expect_near(out, a.transpose().matmul(b));
}

TEST(FusedKernels, MatmulTransAIntoAccumulates) {
  Rng rng(11);
  Matrix a = random_matrix(6, 4, rng);
  Matrix b = random_matrix(6, 2, rng);
  Matrix seed = random_matrix(4, 2, rng);
  Matrix out = seed;
  a.matmul_transA_into(b, out, /*accumulate=*/true);
  expect_near(out, seed + a.transpose().matmul(b));
}

TEST(FusedKernels, MatmulTransBIntoMatchesExplicitTranspose) {
  Rng rng(13);
  Matrix a = random_matrix(7, 4, rng);  // (m, k)
  Matrix b = random_matrix(5, 4, rng);  // (n, k): contract over k
  Matrix out;
  a.matmul_transB_into(b, out);
  expect_near(out, a.matmul(b.transpose()));
}

TEST(FusedKernels, MatmulTransBIntoAccumulates) {
  Rng rng(13);
  Matrix a = random_matrix(4, 6, rng);
  Matrix b = random_matrix(3, 6, rng);
  Matrix seed = random_matrix(4, 3, rng);
  Matrix out = seed;
  a.matmul_transB_into(b, out, /*accumulate=*/true);
  expect_near(out, seed + a.matmul(b.transpose()));
}

TEST(FusedKernels, AffineIntoMatchesMatmulPlusBias) {
  Rng rng(17);
  Matrix x = random_matrix(6, 5, rng);
  Matrix w = random_matrix(5, 3, rng);
  Matrix bias = random_matrix(1, 3, rng);
  Matrix out;
  x.affine_into(w, bias, out);
  Matrix ref = x.matmul(w);
  for (std::size_t i = 0; i < ref.rows(); ++i) {
    for (std::size_t j = 0; j < ref.cols(); ++j) ref(i, j) += bias(0, j);
  }
  expect_near(out, ref);
}

TEST(FusedKernels, AffineIntoIsRowPositionInvariant) {
  // The serving stack's bitwise batched-equals-sequential guarantee
  // (docs/SERVING.md) rests on this kernel property: a row's result must not
  // depend on the batch size or on where the row sits in the batch. Exact
  // bit equality, no tolerance — any change to mm_affine's accumulation
  // order or blocking that breaks this is a serving-correctness bug even if
  // it is numerically tiny.
  Rng rng(23);
  // Odd k and n exercise both the blocked loops and their scalar tails.
  const std::size_t k = 37, n = 13;
  Matrix big = random_matrix(16, k, rng);
  Matrix w = random_matrix(k, n, rng);
  Matrix bias = random_matrix(1, n, rng);
  Matrix big_out;
  big.affine_into(w, bias, big_out);

  for (std::size_t rows : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    for (std::size_t start = 0; start + rows <= big.rows(); start += rows) {
      Matrix sub(rows, k);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < k; ++j) sub(i, j) = big(start + i, j);
      }
      Matrix sub_out;
      sub.affine_into(w, bias, sub_out);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          EXPECT_EQ(sub_out(i, j), big_out(start + i, j))
              << "rows=" << rows << " start=" << start << " (" << i << ", "
              << j << ")";
        }
      }
    }
  }
}

TEST(FusedKernels, HcatIntoMatchesHcat) {
  Rng rng(19);
  Matrix a = random_matrix(4, 3, rng);
  Matrix b = random_matrix(4, 5, rng);
  Matrix out;
  a.hcat_into(b, out);
  expect_near(out, a.hcat(b));
}

TEST(FusedKernels, ColSliceIntoMatchesColSlice) {
  Rng rng(23);
  Matrix a = random_matrix(4, 8, rng);
  Matrix out;
  a.col_slice_into(2, 6, out);
  expect_near(out, a.col_slice(2, 6));
  Matrix seed = random_matrix(4, 4, rng);
  Matrix acc = seed;
  a.col_slice_into(2, 6, acc, /*accumulate=*/true);
  expect_near(acc, seed + a.col_slice(2, 6));
}

TEST(FusedKernels, ResizeKeepsCapacityAcrossShrinkGrow) {
  Matrix m(8, 8, 1.0);
  const double* before = m.data();
  m.resize(4, 4);
  m.resize(8, 8);
  EXPECT_EQ(m.data(), before);  // capacity (and storage) retained
}

// ------------------------------------------- Linear fused backward ----

TEST(FusedKernels, LinearBackwardMatchesReferenceContractions) {
  Rng rng(29);
  Linear layer(5, 4, rng);
  Matrix x = random_matrix(6, 5, rng);
  Matrix y, grad_in;
  layer.forward_into(x, y);
  Matrix grad_out = random_matrix(6, 4, rng);
  auto refs = layer.params();
  ASSERT_EQ(refs.size(), 2u);
  for (auto& p : refs) p.grad->fill(0.0);
  layer.backward_into(x, y, grad_out, grad_in);

  // dW = xᵀ·dy, db = column-sum(dy), dx = dy·Wᵀ.
  Matrix dw_ref = x.transpose().matmul(grad_out);
  Matrix dx_ref = grad_out.matmul(layer.weight().transpose());
  expect_near(*refs[0].grad, dw_ref);
  for (std::size_t j = 0; j < 4; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < 6; ++i) s += grad_out(i, j);
    EXPECT_NEAR((*refs[1].grad)(0, j), s, kTol);
  }
  expect_near(grad_in, dx_ref);
}

// ------------------------------------------------ Mlp equivalence ----

// Reference forward/backward composed from value-returning ops on the same
// weights (ReLU hidden activations, identity output — the Mlp default).
struct RefPass {
  std::vector<Matrix> z;   // pre-activations per linear layer
  std::vector<Matrix> a;   // post-activations (a[0] = input)
  Matrix out;
};

RefPass ref_forward(Mlp& net, const Matrix& x) {
  auto& ps = net.params();
  RefPass p;
  p.a.push_back(x);
  const std::size_t n_linear = ps.size() / 2;
  for (std::size_t l = 0; l < n_linear; ++l) {
    const Matrix& w = *ps[2 * l].value;
    const Matrix& b = *ps[2 * l + 1].value;
    Matrix z = p.a.back().matmul(w);
    for (std::size_t i = 0; i < z.rows(); ++i) {
      for (std::size_t j = 0; j < z.cols(); ++j) z(i, j) += b(0, j);
    }
    p.z.push_back(z);
    if (l + 1 < n_linear) {
      p.a.push_back(z.map([](double v) { return v > 0.0 ? v : 0.0; }));
    } else {
      p.out = z;
    }
  }
  return p;
}

// Returns dL/dx; fills dw/db with parameter grads.
Matrix ref_backward(Mlp& net, const RefPass& p, const Matrix& grad_out,
                    std::vector<Matrix>& dw, std::vector<Matrix>& db) {
  auto& ps = net.params();
  const std::size_t n_linear = ps.size() / 2;
  dw.assign(n_linear, {});
  db.assign(n_linear, {});
  Matrix g = grad_out;
  for (std::size_t l = n_linear; l-- > 0;) {
    const Matrix& w = *ps[2 * l].value;
    dw[l] = p.a[l].transpose().matmul(g);
    db[l].resize(1, g.cols());
    for (std::size_t j = 0; j < g.cols(); ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < g.rows(); ++i) s += g(i, j);
      db[l](0, j) = s;
    }
    g = g.matmul(w.transpose());
    if (l > 0) {
      const Matrix& z = p.z[l - 1];
      for (std::size_t i = 0; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < g.cols(); ++j) {
          if (z(i, j) <= 0.0) g(i, j) = 0.0;
        }
      }
    }
  }
  return g;
}

TEST(MlpEquivalence, ForwardMatchesReference) {
  Rng rng(31);
  Mlp net(6, {8, 8}, 3, rng);
  Matrix x = random_matrix(5, 6, rng);
  const Matrix& y = net.forward(x);
  RefPass ref = ref_forward(net, x);
  expect_near(y, ref.out);
}

TEST(MlpEquivalence, BackwardMatchesReference) {
  Rng rng(37);
  Mlp net(6, {8, 8}, 3, rng);
  Matrix x = random_matrix(5, 6, rng);
  Matrix grad_out = random_matrix(5, 3, rng);

  net.forward(x);
  net.zero_grad();
  Matrix grad_in = net.backward(grad_out);  // copy out of the workspace

  RefPass ref = ref_forward(net, x);
  std::vector<Matrix> dw, db;
  Matrix ref_gin = ref_backward(net, ref, grad_out, dw, db);

  expect_near(grad_in, ref_gin);
  auto& ps = net.params();
  for (std::size_t l = 0; l < dw.size(); ++l) {
    expect_near(*ps[2 * l].grad, dw[l]);
    expect_near(*ps[2 * l + 1].grad, db[l]);
  }
}

TEST(MlpEquivalence, BackwardInputMatchesBackwardAndSkipsParamGrads) {
  Rng rng(53);
  Mlp net(6, {8, 8}, 3, rng);
  Matrix x = random_matrix(5, 6, rng);
  Matrix grad_out = random_matrix(5, 3, rng);

  net.forward(x);
  net.zero_grad();
  Matrix full_gin = net.backward(grad_out);  // copy out of the workspace

  net.forward(x);
  net.zero_grad();
  Matrix input_only_gin = net.backward_input(grad_out);

  // Same dL/d(input), bit-for-bit (identical kernel, identical inputs)...
  expect_near(input_only_gin, full_gin, 0.0);
  // ...and the parameter gradients stay exactly zero.
  for (auto p : net.params()) {
    for (std::size_t k = 0; k < p.grad->size(); ++k) {
      EXPECT_EQ(p.grad->data()[k], 0.0);
    }
  }
}

TEST(MlpEquivalence, RepeatedCallsAreDeterministic) {
  Rng rng(41);
  Mlp net(4, {8}, 2, rng);
  Matrix big = random_matrix(16, 4, rng);
  Matrix small = random_matrix(3, 4, rng);
  Matrix first = net.forward(small);  // copy
  net.forward(big);                   // grow workspace
  const Matrix& again = net.forward(small);  // shrink back in place
  expect_near(again, first, 0.0);
}

TEST(MlpEquivalence, FusedPathPassesGradientCheck) {
  Rng rng(43);
  Mlp net(5, {8}, 3, rng);
  Matrix x = random_matrix(4, 5, rng);
  Matrix target = random_matrix(4, 3, rng);
  Matrix grad;
  net.zero_grad();
  mse_loss_into(net.forward(x), target, grad);
  net.backward(grad);
  const double err = max_param_grad_error(
      net, [&] { return mse_loss(net.forward(x), target).loss; });
  EXPECT_LT(err, 1e-5);
}

}  // namespace
}  // namespace hero::nn
