// Tests for the RL infrastructure: replay buffer, exploration schedules and
// noise, the discrete action grid, and the shared evaluation harness.
#include <gtest/gtest.h>

#include <set>

#include "rl/discretizer.h"
#include "rl/evaluation.h"
#include "rl/exploration.h"
#include "rl/replay_buffer.h"
#include "sim/scenario.h"

namespace hero::rl {
namespace {

// -------------------------------------------------------- ReplayBuffer ----

TEST(ReplayBuffer, FillsThenOverwritesOldest) {
  ReplayBuffer<int> buf(3);
  buf.add(1);
  buf.add(2);
  buf.add(3);
  EXPECT_EQ(buf.size(), 3u);
  buf.add(4);  // overwrites slot 0
  EXPECT_EQ(buf.size(), 3u);
  std::multiset<int> contents;
  for (std::size_t i = 0; i < buf.size(); ++i) contents.insert(buf.at(i));
  EXPECT_TRUE(contents.count(4));
  EXPECT_FALSE(contents.count(1));
}

TEST(ReplayBuffer, SampleReturnsStoredItems) {
  ReplayBuffer<int> buf(10);
  for (int i = 0; i < 5; ++i) buf.add(i * 10);
  Rng rng(1);
  auto s = buf.sample(100, rng);
  EXPECT_EQ(s.size(), 100u);
  for (const int* p : s) {
    EXPECT_EQ(*p % 10, 0);
    EXPECT_LE(*p, 40);
  }
}

TEST(ReplayBuffer, SampleCoversAllItems) {
  ReplayBuffer<int> buf(10);
  for (int i = 0; i < 10; ++i) buf.add(i);
  Rng rng(2);
  std::set<int> seen;
  for (const int* p : buf.sample(500, rng)) seen.insert(*p);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ReplayBuffer, ReadyThreshold) {
  ReplayBuffer<int> buf(10);
  EXPECT_FALSE(buf.ready(1));
  buf.add(1);
  EXPECT_TRUE(buf.ready(1));
  EXPECT_FALSE(buf.ready(2));
}

TEST(ReplayBuffer, ClearResets) {
  ReplayBuffer<int> buf(4);
  buf.add(1);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  buf.add(7);
  EXPECT_EQ(buf.at(0), 7);
}

TEST(ReplayBuffer, SampleEmptyThrows) {
  ReplayBuffer<int> buf(4);
  Rng rng(3);
  EXPECT_THROW(buf.sample(1, rng), std::logic_error);
}

// ------------------------------------------------------------ schedules ---

TEST(LinearSchedule, Interpolates) {
  LinearSchedule s(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
  EXPECT_NEAR(s.value(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(100), 0.1);
  EXPECT_DOUBLE_EQ(s.value(1000), 0.1);
  EXPECT_DOUBLE_EQ(s.value(-5), 1.0);
}

TEST(OrnsteinUhlenbeck, MeanRevertsAndResets) {
  OrnsteinUhlenbeck ou(1, 0.5, 0.0, 1.0);  // no diffusion: pure decay
  Rng rng(4);
  // Manually push the state by sampling with sigma 0 — state stays 0; use a
  // sigma > 0 process to verify boundedness instead.
  OrnsteinUhlenbeck noisy(2, 0.15, 0.2, 1.0);
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) last = noisy.sample(rng)[0];
  (void)last;
  noisy.reset();
  // After reset the very first sample is a single small step from zero.
  auto v = noisy.sample(rng);
  EXPECT_LT(std::abs(v[0]), 1.5);
}

TEST(OrnsteinUhlenbeck, TemporallyCorrelated) {
  OrnsteinUhlenbeck ou(1, 0.05, 0.1, 1.0);
  Rng rng(5);
  // Consecutive samples should be closer than independent draws: measure the
  // lag-1 autocorrelation over a long run.
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(ou.sample(rng)[0]);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double num = 0, den = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i + 1] - mean);
    den += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_GT(num / den, 0.7);
}

TEST(GaussianPerturb, RespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    auto a = gaussian_perturb({0.19, 0.24}, {0.04, -0.25}, {0.2, 0.25}, 0.5, rng);
    EXPECT_GE(a[0], 0.04);
    EXPECT_LE(a[0], 0.2);
    EXPECT_GE(a[1], -0.25);
    EXPECT_LE(a[1], 0.25);
  }
}

// ------------------------------------------------------------ ActionGrid --

TEST(ActionGrid, SizeAndDecode) {
  ActionGrid g = ActionGrid::standard();
  EXPECT_EQ(g.size(), 25u);
  auto c0 = g.decode(0);
  EXPECT_DOUBLE_EQ(c0.linear, 0.04);
  EXPECT_DOUBLE_EQ(c0.angular, -0.25);
  auto clast = g.decode(24);
  EXPECT_DOUBLE_EQ(clast.linear, 0.20);
  EXPECT_DOUBLE_EQ(clast.angular, 0.25);
}

TEST(ActionGrid, EncodeDecodeRoundTrip) {
  ActionGrid g = ActionGrid::standard();
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.encode(g.decode(i)), i);
  }
}

TEST(ActionGrid, EncodeSnapsToNearest) {
  ActionGrid g = ActionGrid::standard();
  auto c = g.decode(g.encode({0.05, 0.01}));
  EXPECT_DOUBLE_EQ(c.linear, 0.04);
  EXPECT_DOUBLE_EQ(c.angular, 0.0);
}

TEST(ActionGrid, DecodeOutOfRangeThrows) {
  ActionGrid g = ActionGrid::standard();
  EXPECT_THROW(g.decode(25), std::logic_error);
}

// ------------------------------------------------------------ evaluation --

// A scripted controller used to exercise the harness deterministically.
class ConstantController : public Controller {
 public:
  explicit ConstantController(sim::TwistCmd cmd) : cmd_(cmd) {}
  std::vector<sim::TwistCmd> act(const sim::LaneWorld& world, Rng&, bool) override {
    return std::vector<sim::TwistCmd>(
        static_cast<std::size_t>(world.num_learners()), cmd_);
  }

 private:
  sim::TwistCmd cmd_;
};

TEST(Evaluation, CrawlingAvoidsCollisionButNeverMerges) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  ConstantController crawl({0.04, 0.0});  // match the plodder's speed
  Rng rng(7);
  auto summary = evaluate(world, crawl, rng, 10, sc.merger_index,
                          sc.merger_target_lane);
  EXPECT_EQ(summary.episodes, 10);
  EXPECT_DOUBLE_EQ(summary.collision_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.success_rate, 0.0);
  EXPECT_NEAR(summary.mean_speed, 0.04, 1e-9);
}

TEST(Evaluation, FullSpeedCollides) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  ConstantController ram({0.20, 0.0});
  Rng rng(8);
  auto summary = evaluate(world, ram, rng, 10, sc.merger_index,
                          sc.merger_target_lane);
  EXPECT_GT(summary.collision_rate, 0.8);
  EXPECT_LT(summary.mean_reward, 0.0);
}

TEST(Evaluation, EpisodeStatsStepsAndReward) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  ConstantController crawl({0.04, 0.0});
  Rng rng(9);
  auto ep = run_episode(world, crawl, rng, /*explore=*/false, sc.merger_index,
                        sc.merger_target_lane);
  EXPECT_EQ(ep.steps, sc.config.max_steps);
  EXPECT_FALSE(ep.collision);
  // Crawling earns small positive travel reward every step.
  EXPECT_GT(ep.team_reward, 0.0);
  EXPECT_LT(ep.team_reward, 5.0);
}

}  // namespace
}  // namespace hero::rl
