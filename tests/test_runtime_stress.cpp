// Multi-threaded stress tests for the parallel runtime — driven under
// -fsanitize=thread in CI alongside test_obs_stress (docs/CORRECTNESS.md).
// Like those, they double as correctness tests: all counts must balance
// after the threads join.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/rng_stream.h"
#include "runtime/sharded_replay.h"
#include "runtime/thread_pool.h"

namespace {

using hero::Rng;
using hero::runtime::ShardedReplay;
using hero::runtime::ThreadPool;

TEST(RuntimeStress, ShardedReplayConcurrentPushAndSample) {
  // One producer per shard (the rollout contract) pushing while a consumer
  // thread samples concurrently — the mixed-phase pattern TSan needs to see
  // to prove push/sample never race on shard internals.
  constexpr std::size_t kShards = 4;
  constexpr int kPerProducer = 5000;
  ShardedReplay<long> rb(/*total_capacity=*/kShards * 512, kShards);
  for (std::size_t s = 0; s < kShards; ++s) rb.push(s, -1);  // never empty

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kShards; ++s) {
    producers.emplace_back([&rb, s] {
      for (long i = 0; i < kPerProducer; ++i) {
        rb.push(s, static_cast<long>(s) * kPerProducer + i);
      }
    });
  }
  std::thread consumer([&rb, &stop] {
    Rng rng(3);
    std::vector<long> out;
    long draws = 0;
    while (!stop.load(std::memory_order_acquire)) {
      rb.sample(64, rng, out);
      draws += static_cast<long>(out.size());
    }
    EXPECT_GT(draws, 0);
  });
  for (auto& p : producers) p.join();
  stop.store(true, std::memory_order_release);
  consumer.join();

  // Producers wrote kPerProducer each into 512-slot rings: every shard must
  // sit exactly at capacity afterwards.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(rb.shard_size(s), rb.shard_capacity());
  }
}

TEST(RuntimeStress, ShardedReplayConcurrentDrainAndPush) {
  // Staging-mode pattern: producers fill their own shards while the learner
  // periodically drains a *different* shard set it knows to be quiescent —
  // here modeled by draining each shard only after its producer finished.
  constexpr std::size_t kShards = 8;
  ShardedReplay<int> rb(/*total_capacity=*/kShards * 1024, kShards);
  std::vector<std::thread> producers;
  std::vector<std::atomic<bool>> done(kShards);
  for (auto& d : done) d.store(false);
  for (std::size_t s = 0; s < kShards; ++s) {
    producers.emplace_back([&, s] {
      for (int i = 0; i < 800; ++i) rb.push(s, i);
      done[s].store(true, std::memory_order_release);
    });
  }
  long drained = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    while (!done[s].load(std::memory_order_acquire)) std::this_thread::yield();
    int expect = 0;
    rb.drain_front(s, rb.shard_size(s), [&](int&& v) {
      EXPECT_EQ(v, expect++);
      ++drained;
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(drained, static_cast<long>(kShards) * 800);
}

TEST(RuntimeStress, ThreadPoolParallelForHammer) {
  // Many short rounds back-to-back: exercises the latch handoff between the
  // submitting thread and pool workers (the barrier every training round
  // crosses twice).
  ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(64, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 200L * 64);
}

TEST(RuntimeStress, ThreadPoolSlotExclusivity) {
  // parallel_for_slots promises a slot is never occupied by two concurrent
  // tasks — per-slot non-atomic counters under TSan prove it.
  ThreadPool pool(4);
  struct Slot {
    long count = 0;  // intentionally non-atomic: exclusivity is the claim
    char pad[56];
  };
  std::vector<Slot> slots(4);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for_slots(97, [&](std::size_t, std::size_t slot) {
      slots[slot].count += 1;
    });
  }
  long total = 0;
  for (const auto& s : slots) total += s.count;
  EXPECT_EQ(total, 50L * 97);
}

TEST(RuntimeStress, StreamRngThreadLocalDraws) {
  // Counter-based streams are constructed concurrently from raw (seed, id)
  // pairs — no shared state, so concurrent construction must be race-free
  // and reproduce the single-threaded sequences exactly.
  constexpr int kStreams = 16;
  std::vector<std::uint64_t> serial(kStreams), threaded(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    serial[static_cast<std::size_t>(s)] =
        hero::runtime::stream_rng(11, static_cast<std::uint64_t>(s)).engine()();
  }
  ThreadPool pool(8);
  pool.parallel_for(kStreams, [&](std::size_t s) {
    threaded[s] = hero::runtime::stream_rng(11, s).engine()();
  });
  EXPECT_EQ(serial, threaded);
}

}  // namespace
