// Tests for the reference single-agent environments and the generic
// training loop, including SAC solving pendulum swing-up partially (a
// stronger end-to-end check of the squashed-Gaussian machinery than the
// 1-D regulator).
#include <gtest/gtest.h>

#include <cmath>

#include "algos/sac.h"
#include "common/stats.h"
#include "rl/env.h"

namespace hero::rl {
namespace {

TEST(PointRegulatorEnv, Dynamics) {
  PointRegulatorEnv env(5, 0.2);
  Rng rng(1);
  auto obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 1u);
  const double x0 = obs[0];
  auto s = env.step({1.0});
  EXPECT_NEAR(s.obs[0], x0 + 0.2, 1e-12);
  EXPECT_NEAR(s.reward, -std::abs(x0 + 0.2), 1e-12);
  EXPECT_FALSE(s.done);
  for (int i = 0; i < 4; ++i) s = env.step({0.0});
  EXPECT_TRUE(s.done);
}

TEST(PointRegulatorEnv, ClampsAction) {
  PointRegulatorEnv env(5, 0.2);
  Rng rng(2);
  auto obs = env.reset(rng);
  auto s = env.step({100.0});
  EXPECT_NEAR(s.obs[0], obs[0] + 0.2, 1e-12);  // clamped to +1
}

TEST(PendulumEnv, ObservationIsUnitCircle) {
  PendulumEnv env;
  Rng rng(3);
  auto obs = env.reset(rng);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_NEAR(obs[0] * obs[0] + obs[1] * obs[1], 1.0, 1e-12);
}

TEST(PendulumEnv, RewardIsNonPositiveAndZeroAtTop) {
  PendulumEnv env;
  Rng rng(4);
  env.reset(rng);
  auto s = env.step({0.0});
  EXPECT_LE(s.reward, 0.0);
}

TEST(PendulumEnv, EpisodeEndsAtHorizon) {
  PendulumEnv env(10);
  Rng rng(5);
  env.reset(rng);
  EnvStep s;
  for (int i = 0; i < 10; ++i) s = env.step({0.0});
  EXPECT_TRUE(s.done);
}

TEST(PendulumEnv, GravityPullsHangingPendulumDown) {
  PendulumEnv env(200);
  Rng rng(6);
  env.reset(rng);
  // Uncontrolled pendulum: |θ| should spend most time away from upright.
  int upright = 0;
  for (int i = 0; i < 200; ++i) {
    env.step({0.0});
    if (std::abs(env.theta()) < 0.3) ++upright;
  }
  EXPECT_LT(upright, 60);
}

TEST(TrainOnEnv, SacImprovesOnPointTask) {
  Rng rng(7);
  algos::SacConfig cfg;
  cfg.batch = 64;
  cfg.warmup_steps = 200;
  cfg.hidden = {16, 16};
  PointRegulatorEnv env;
  algos::SacAgent agent(env.obs_dim(), env.action_lo(), env.action_hi(), cfg, rng);
  auto curve = train_on_env(env, agent, 150, rng);
  ASSERT_EQ(curve.size(), 150u);
  double early = 0, late = 0;
  for (int i = 0; i < 20; ++i) early += curve[static_cast<std::size_t>(i)];
  for (int i = 130; i < 150; ++i) late += curve[static_cast<std::size_t>(i)];
  EXPECT_GT(late, early + 10.0);
}

TEST(TrainOnEnv, SacReducesPendulumCost) {
  // Swing-up is hard; we only require clear improvement within a small
  // budget, not solving it.
  Rng rng(8);
  algos::SacConfig cfg;
  cfg.batch = 64;
  cfg.warmup_steps = 300;
  cfg.hidden = {32, 32};
  cfg.alpha = 0.1;
  cfg.lr = 0.003;
  PendulumEnv env;
  algos::SacAgent agent(env.obs_dim(), env.action_lo(), env.action_hi(), cfg, rng);
  auto curve = train_on_env(env, agent, 60, rng);
  double early = 0, late = 0;
  for (int i = 0; i < 10; ++i) early += curve[static_cast<std::size_t>(i)];
  for (int i = 50; i < 60; ++i) late += curve[static_cast<std::size_t>(i)];
  EXPECT_GT(late / 10.0, early / 10.0 + 30.0);
}

}  // namespace
}  // namespace hero::rl
