// Tests for the debug invariant layer (docs/CORRECTNESS.md).
//
// The same source compiles under both build flavors:
//   * HERO_DEBUG_CHECKS=ON  — HERO_DCHECK fires on injected NaN / shape
//     violations (the CI debug-checks job runs this flavor);
//   * default (OFF)         — the macros compile to nothing: conditions are
//     never evaluated and poisoned inputs flow through unchecked.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/replay_buffer.h"

namespace {

using hero::Rng;
using hero::nn::Matrix;
using hero::nn::Mlp;

constexpr bool kChecksOn = HERO_DEBUG_CHECKS_ENABLED != 0;

TEST(DebugChecks, DcheckConditionNotEvaluatedWhenDisabled) {
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return true;
  };
  HERO_DCHECK(costly());
  HERO_DCHECK_MSG(costly(), "message " << evaluations);
  EXPECT_EQ(evaluations, kChecksOn ? 2 : 0);
}

TEST(DebugChecks, DcheckFiresOnFalseCondition) {
  auto violate = [] { HERO_DCHECK_MSG(1 == 2, "injected violation"); };
  if (kChecksOn) {
    EXPECT_THROW(violate(), std::logic_error);
  } else {
    EXPECT_NO_THROW(violate());
  }
}

TEST(DebugChecks, CheckFiniteNamesOffendingElement) {
  // check_finite is an unconditional function — it always throws; only the
  // HERO_DCHECK_FINITE wrapper is compiled out.
  Matrix m(2, 3, 1.0);
  EXPECT_TRUE(m.all_finite());
  EXPECT_NO_THROW(m.check_finite("test"));
  m(1, 2) = std::nan("");
  EXPECT_FALSE(m.all_finite());
  try {
    m.check_finite("poisoned activations");
    FAIL() << "check_finite did not throw on NaN";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("poisoned activations"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(1, 2)"), std::string::npos) << msg;
  }
  m(1, 2) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(m.check_finite("inf"), std::logic_error);
}

TEST(DebugChecks, DcheckFiniteMacroCompilesOutWhenDisabled) {
  Matrix m(1, 2, 0.0);
  m(0, 1) = std::nan("");
  auto guarded = [&m] { HERO_DCHECK_FINITE(m, "macro guard"); };
  if (kChecksOn) {
    EXPECT_THROW(guarded(), std::logic_error);
  } else {
    EXPECT_NO_THROW(guarded());
  }
}

TEST(DebugChecks, MlpForwardRejectsNaNInput) {
  Rng rng(3);
  Mlp net(4, {8}, 2, rng);
  Matrix x(5, 4, 0.5);
  EXPECT_NO_THROW(net.forward(x));
  x(2, 1) = std::nan("");
  if (kChecksOn) {
    EXPECT_THROW(net.forward(x), std::logic_error);
  } else {
    EXPECT_NO_THROW(net.forward(x));
  }
}

TEST(DebugChecks, MlpBackwardRejectsNaNGradient) {
  Rng rng(4);
  Mlp net(3, {6}, 2, rng);
  Matrix x(4, 3, 0.25);
  net.forward(x);
  Matrix g(4, 2, 0.1);
  g(0, 0) = std::nan("");
  if (kChecksOn) {
    EXPECT_THROW(net.backward(g), std::logic_error);
  } else {
    EXPECT_NO_THROW(net.backward(g));
  }
}

TEST(DebugChecks, OptimizerRejectsNaNGradient) {
  Rng rng(5);
  Mlp net(2, {4}, 1, rng);
  net.zero_grad();
  // Poison one gradient entry directly.
  auto params = net.params();
  ASSERT_FALSE(params.empty());
  params.front().grad->operator()(0, 0) = std::nan("");
  hero::nn::Adam opt(params, 1e-3);
  if (kChecksOn) {
    EXPECT_THROW(opt.step(), std::logic_error);
  } else {
    EXPECT_NO_THROW(opt.step());
  }
}

TEST(DebugChecks, ReplayBufferEmptyBatchInvariant) {
  struct Transition {
    int x;
  };
  hero::rl::ReplayBuffer<Transition> buf(8);
  buf.add({1});
  Rng rng(6);
  auto sample_empty = [&] { (void)buf.sample(0, rng); };
  if (kChecksOn) {
    EXPECT_THROW(sample_empty(), std::logic_error);
  } else {
    EXPECT_NO_THROW(sample_empty());
  }
}

}  // namespace
