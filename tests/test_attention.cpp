// The attention critic's hand-derived backward pass is verified against
// central finite differences over every parameter, plus structural tests
// (attention weights, parameter sharing, target updates).
#include <gtest/gtest.h>

#include <cmath>

#include "algos/attention_critic.h"
#include "nn/losses.h"
#include "nn/optimizer.h"

namespace hero::algos {
namespace {

constexpr std::size_t kObs = 5;
constexpr std::size_t kActs = 3;
constexpr std::size_t kEmbed = 6;

AttentionCritic make_critic(Rng& rng) {
  return AttentionCritic(kObs, kActs, kEmbed, {8}, rng);
}

// Builds a j-major (m·B, obs+|A|) matrix of other-agent rows.
nn::Matrix make_others(std::size_t m, std::size_t B, Rng& rng) {
  nn::Matrix rows(m * B, kObs + kActs);
  for (std::size_t r = 0; r < m * B; ++r) {
    for (std::size_t c = 0; c < kObs; ++c) rows(r, c) = rng.normal(0, 0.5);
    rows(r, kObs + rng.index(kActs)) = 1.0;  // one-hot action
  }
  return rows;
}

TEST(AttentionCritic, OutputShape) {
  Rng rng(1);
  auto critic = make_critic(rng);
  nn::Matrix own = nn::Matrix::xavier(4, kObs, rng);
  nn::Matrix others = make_others(2, 4, rng);
  auto pass = critic.forward(own, others);
  EXPECT_EQ(pass.q.rows(), 4u);
  EXPECT_EQ(pass.q.cols(), kActs);
  EXPECT_EQ(pass.attn.rows(), 4u);
  EXPECT_EQ(pass.attn.cols(), 2u);
}

TEST(AttentionCritic, AttentionWeightsAreDistribution) {
  Rng rng(2);
  auto critic = make_critic(rng);
  nn::Matrix own = nn::Matrix::xavier(3, kObs, rng);
  nn::Matrix others = make_others(3, 3, rng);
  auto pass = critic.forward(own, others);
  for (std::size_t b = 0; b < 3; ++b) {
    double s = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(pass.attn(b, j), 0.0);
      s += pass.attn(b, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(AttentionCritic, SingleOtherGetsFullAttention) {
  Rng rng(3);
  auto critic = make_critic(rng);
  nn::Matrix own = nn::Matrix::xavier(2, kObs, rng);
  nn::Matrix others = make_others(1, 2, rng);
  auto pass = critic.forward(own, others);
  EXPECT_NEAR(pass.attn(0, 0), 1.0, 1e-12);
}

TEST(AttentionCritic, BackwardFiniteDifference) {
  Rng rng(4);
  auto critic = make_critic(rng);
  const std::size_t B = 3, m = 2;
  nn::Matrix own = nn::Matrix::xavier(B, kObs, rng);
  nn::Matrix others = make_others(m, B, rng);

  // Scalar loss: weighted sum of all Q outputs.
  nn::Matrix w = nn::Matrix::xavier(B, kActs, rng);
  auto loss_fn = [&]() {
    auto pass = critic.forward(own, others);
    double loss = 0.0;
    for (std::size_t b = 0; b < B; ++b)
      for (std::size_t a = 0; a < kActs; ++a) loss += w(b, a) * pass.q(b, a);
    return loss;
  };

  critic.zero_grad();
  auto pass = critic.forward(own, others);
  critic.backward(pass, w);

  // Finite-difference every parameter.
  double worst = 0.0;
  for (auto p : critic.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const double saved = p.value->data()[i];
      const double h = 1e-5;
      p.value->data()[i] = saved + h;
      const double up = loss_fn();
      p.value->data()[i] = saved - h;
      const double down = loss_fn();
      p.value->data()[i] = saved;
      const double numeric = (up - down) / (2 * h);
      const double analytic = p.grad->data()[i];
      const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-6});
      worst = std::max(worst, std::abs(numeric - analytic) / denom);
    }
  }
  EXPECT_LT(worst, 1e-4);
}

TEST(AttentionCritic, CopyIsDeepAndSoftUpdateMoves) {
  Rng rng(5);
  auto critic = make_critic(rng);
  AttentionCritic target(critic);

  nn::Matrix own = nn::Matrix::xavier(2, kObs, rng);
  nn::Matrix others = make_others(2, 2, rng);
  auto q0 = target.forward(own, others).q;

  // Perturb the source; the copy must be unaffected until soft-updated.
  critic.params()[0].value->data()[0] += 0.5;
  auto q1 = target.forward(own, others).q;
  EXPECT_DOUBLE_EQ(q0(0, 0), q1(0, 0));

  target.soft_update_from(critic, 1.0);
  auto q2 = target.forward(own, others).q;
  auto qsrc = critic.forward(own, others).q;
  EXPECT_NEAR(q2(0, 0), qsrc(0, 0), 1e-12);
}

TEST(AttentionCritic, ClipGradNormScales) {
  Rng rng(6);
  auto critic = make_critic(rng);
  for (auto p : critic.params()) p.grad->fill(1.0);
  critic.clip_grad_norm(2.0);
  double sq = 0;
  for (auto p : critic.params())
    for (std::size_t i = 0; i < p.grad->size(); ++i)
      sq += p.grad->data()[i] * p.grad->data()[i];
  EXPECT_NEAR(std::sqrt(sq), 2.0, 1e-9);
}

TEST(AttentionCritic, TrainsTowardTargets) {
  // Regression sanity: repeated gradient steps must reduce an MSE loss.
  Rng rng(7);
  auto critic = make_critic(rng);
  nn::Adam opt(critic.params(), 0.01);
  nn::Matrix own = nn::Matrix::xavier(8, kObs, rng);
  nn::Matrix others = make_others(2, 8, rng);
  std::vector<std::size_t> taken(8);
  std::vector<double> targets(8);
  for (std::size_t i = 0; i < 8; ++i) {
    taken[i] = rng.index(kActs);
    targets[i] = rng.normal();
  }
  double first = 0, last = 0;
  for (int it = 0; it < 300; ++it) {
    auto pass = critic.forward(own, others);
    auto loss = nn::mse_loss_selected(pass.q, taken, targets);
    if (it == 0) first = loss.loss;
    last = loss.loss;
    critic.zero_grad();
    critic.backward(pass, loss.grad);
    opt.step();
  }
  EXPECT_LT(last, 0.05 * first);
}

TEST(AttentionCritic, RejectsMismatchedShapes) {
  Rng rng(8);
  auto critic = make_critic(rng);
  nn::Matrix own = nn::Matrix::xavier(4, kObs, rng);
  nn::Matrix bad(7, kObs + kActs);  // 7 rows not divisible by batch 4
  EXPECT_THROW(critic.forward(own, bad), std::logic_error);
}

}  // namespace
}  // namespace hero::algos
