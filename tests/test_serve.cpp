// Serving-layer tests (docs/SERVING.md): wire protocol round-trips and
// robustness, micro-batcher scheduling, checkpoint manifest validation, and
// the load-bearing equivalence guarantees — batched serving is bitwise equal
// to batch-size-1 serving, which is bitwise equal to in-process greedy
// evaluation, and hot reload neither drops nor perturbs in-flight sessions.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hero/checkpoint.h"
#include "hero/hero_trainer.h"
#include "rl/evaluation.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/policy_engine.h"
#include "serve/protocol.h"
#include "serve/request_builder.h"
#include "serve/server.h"
#include "sim/lane_world.h"
#include "sim/scenario.h"

namespace hero::serve {
namespace {

// --------------------------------------------------------- protocol ----

ActRequest sample_request(std::uint64_t id) {
  ActRequest req;
  req.request_id = id;
  req.reset = 1;
  req.y = {0.5, -1.5, 2.5};
  req.heading = {0.01, -0.02, 0.03};
  req.speed = {10.0, 11.0, 12.0};
  req.lane = {0, 1, 2};
  req.hl.assign(3 * 4, 0.25);
  req.ll.assign(3 * 3 * 2, -0.125);
  return req;
}

TEST(Protocol, ActRoundTrip) {
  const ActRequest req = sample_request(77);
  std::vector<std::uint8_t> buf;
  encode_act(req, buf);

  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  MsgType type;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kAct);

  ActRequest out;
  ASSERT_TRUE(decode_act(payload.data(), payload.size(), 3, 4, 2, 3, &out));
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.reset, req.reset);
  EXPECT_EQ(out.y, req.y);
  EXPECT_EQ(out.heading, req.heading);
  EXPECT_EQ(out.speed, req.speed);
  EXPECT_EQ(out.lane, req.lane);
  EXPECT_EQ(out.hl, req.hl);
  EXPECT_EQ(out.ll, req.ll);
}

TEST(Protocol, ResponseAndAdminRoundTrips) {
  std::vector<std::uint8_t> buf;

  ActResponse resp;
  resp.request_id = 9;
  resp.linear = {1.0, 2.0};
  resp.angular = {-0.5, 0.5};
  resp.option = {0, 3};
  encode_act_response(resp, buf);

  Reload reload;
  reload.dir = "ckpt_v2";
  encode_reload(reload, buf);

  ReloadAck ack;
  ack.ok = 1;
  ack.message = "reloaded";
  encode_reload_ack(ack, buf);

  ErrorMsg err;
  err.message = "nope";
  encode_error(err, buf);
  encode_shutdown(buf);

  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  MsgType type;
  std::vector<std::uint8_t> payload;

  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kActResponse);
  ActResponse r2;
  ASSERT_TRUE(decode_act_response(payload.data(), payload.size(), 2, &r2));
  EXPECT_EQ(r2.request_id, resp.request_id);
  EXPECT_EQ(r2.linear, resp.linear);
  EXPECT_EQ(r2.angular, resp.angular);
  EXPECT_EQ(r2.option, resp.option);

  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kReload);
  Reload rl2;
  ASSERT_TRUE(decode_reload(payload.data(), payload.size(), &rl2));
  EXPECT_EQ(rl2.dir, reload.dir);

  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kReloadAck);
  ReloadAck a2;
  ASSERT_TRUE(decode_reload_ack(payload.data(), payload.size(), &a2));
  EXPECT_EQ(a2.ok, 1);
  EXPECT_EQ(a2.message, "reloaded");

  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kError);
  ErrorMsg e2;
  ASSERT_TRUE(decode_error(payload.data(), payload.size(), &e2));
  EXPECT_EQ(e2.message, "nope");

  ASSERT_TRUE(reader.next(&type, &payload));
  ASSERT_EQ(type, MsgType::kShutdown);
  EXPECT_FALSE(reader.next(&type, &payload));
  EXPECT_FALSE(reader.bad());
}

TEST(Protocol, FrameReaderReassemblesTornFrames) {
  std::vector<std::uint8_t> buf;
  encode_act(sample_request(1), buf);
  encode_act(sample_request(2), buf);

  FrameReader reader;
  MsgType type;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint64_t> ids;
  // Worst-case fragmentation: one byte at a time.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    reader.feed(buf.data() + i, 1);
    while (reader.next(&type, &payload)) {
      ActRequest out;
      ASSERT_TRUE(decode_act(payload.data(), payload.size(), 3, 4, 2, 3, &out));
      ids.push_back(out.request_id);
    }
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_FALSE(reader.bad());
}

TEST(Protocol, FrameReaderRejectsOversizeFrame) {
  // A length prefix beyond kMaxFrameBytes must poison the stream instead of
  // attempting a multi-gigabyte allocation.
  const std::uint32_t huge = (1u << 24) + 1;
  std::uint8_t hdr[5] = {static_cast<std::uint8_t>(huge & 0xff),
                         static_cast<std::uint8_t>((huge >> 8) & 0xff),
                         static_cast<std::uint8_t>((huge >> 16) & 0xff),
                         static_cast<std::uint8_t>((huge >> 24) & 0xff),
                         static_cast<std::uint8_t>(MsgType::kAct)};
  FrameReader reader;
  reader.feed(hdr, sizeof(hdr));
  MsgType type;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(reader.next(&type, &payload));
  EXPECT_TRUE(reader.bad());
}

TEST(Protocol, DecodeActRejectsWrongDimsAndTruncation) {
  const ActRequest req = sample_request(5);
  std::vector<std::uint8_t> buf;
  encode_act(req, buf);
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  MsgType type;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(reader.next(&type, &payload));

  ActRequest out;
  // Encoded for 3 learners / hl 4 / ll 2 / 3 lanes; every other geometry
  // must be rejected.
  EXPECT_FALSE(decode_act(payload.data(), payload.size(), 2, 4, 2, 3, &out));
  EXPECT_FALSE(decode_act(payload.data(), payload.size(), 3, 5, 2, 3, &out));
  EXPECT_FALSE(decode_act(payload.data(), payload.size(), 3, 4, 3, 3, &out));
  EXPECT_FALSE(decode_act(payload.data(), payload.size(), 3, 4, 2, 2, &out));
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, payload.size() - 1}) {
    EXPECT_FALSE(decode_act(payload.data(), cut, 3, 4, 2, 3, &out));
  }
}

// ---------------------------------------------------------- batcher ----

TEST(MicroBatcher, FlushesWhenFull) {
  MicroBatcher b({/*max_batch=*/3, /*max_wait_us=*/1000});
  EXPECT_FALSE(b.should_flush(0));
  EXPECT_EQ(b.wait_budget_us(0), -1);
  b.enqueue(10, 0);
  b.enqueue(11, 1);
  EXPECT_FALSE(b.should_flush(2));
  b.enqueue(12, 2);
  EXPECT_TRUE(b.should_flush(2));  // full: no need to wait out the deadline

  std::vector<std::uint64_t> out;
  b.take(out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(b.pending(), 0u);
}

TEST(MicroBatcher, FlushesOnDeadline) {
  MicroBatcher b({/*max_batch=*/8, /*max_wait_us=*/100});
  b.enqueue(1, 1000);
  EXPECT_FALSE(b.should_flush(1050));
  EXPECT_EQ(b.wait_budget_us(1050), 50);
  EXPECT_TRUE(b.should_flush(1100));
  EXPECT_EQ(b.wait_budget_us(1200), 0);
}

TEST(MicroBatcher, TakeRespectsMaxBatchAndOrder) {
  MicroBatcher b({/*max_batch=*/2, /*max_wait_us=*/0});
  for (std::uint64_t t = 0; t < 5; ++t) b.enqueue(100 + t, static_cast<long long>(t));
  std::vector<std::uint64_t> out;
  b.take(out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{100, 101}));
  b.take(out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{102, 103}));
  b.take(out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{104}));
  EXPECT_EQ(b.pending(), 0u);
}

// ------------------------------------------------ checkpoint manifest ----

std::string fresh_dir(const char* tag) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / tag).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Writes a deterministic (untrained) checkpoint and returns its directory.
std::string make_checkpoint(const char* tag, const core::HeroConfig& cfg,
                            unsigned seed = 11) {
  const std::string dir = fresh_dir(tag);
  Rng rng(seed);
  auto scenario = sim::cooperative_lane_change(3);
  core::HeroTrainer trainer(scenario, cfg, rng);
  trainer.save(dir);
  return dir;
}

TEST(CheckpointManifest, RoundTripsThroughDisk) {
  const std::string dir = make_checkpoint("ckpt_roundtrip", core::HeroConfig{});
  core::CheckpointManifest m;
  ASSERT_TRUE(core::read_manifest(dir, &m));
  EXPECT_EQ(m.format_version, core::kCheckpointFormatVersion);
  EXPECT_EQ(m.learners, 3);
  EXPECT_FALSE(m.shapes.empty());

  // Rewrite and reread: the canonical JSON must survive its own parser.
  core::write_manifest(dir, m);
  core::CheckpointManifest m2;
  ASSERT_TRUE(core::read_manifest(dir, &m2));
  EXPECT_EQ(core::manifest_to_json(m), core::manifest_to_json(m2));
}

TEST(CheckpointManifest, RejectsVersionAndShapeMismatch) {
  const std::string dir = make_checkpoint("ckpt_tamper", core::HeroConfig{});
  core::CheckpointManifest m;
  ASSERT_TRUE(core::read_manifest(dir, &m));

  core::CheckpointManifest bad = m;
  bad.format_version = core::kCheckpointFormatVersion + 1;
  core::write_manifest(dir, bad);
  auto scenario = sim::cooperative_lane_change(3);
  try {
    PolicyEngine engine(scenario, core::HeroConfig{}, dir);
    FAIL() << "version mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("format"), std::string::npos) << e.what();
  }

  bad = m;
  bad.learners = 5;
  core::write_manifest(dir, bad);
  EXPECT_THROW(
      { PolicyEngine engine(scenario, core::HeroConfig{}, dir); },
      std::runtime_error);
}

TEST(CheckpointManifest, LegacyDirectoryLoadsWithWarningFlag) {
  const std::string dir = make_checkpoint("ckpt_legacy", core::HeroConfig{});
  std::filesystem::remove(dir + "/checkpoint.json");
  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine engine(scenario, core::HeroConfig{}, dir);
  EXPECT_TRUE(engine.legacy_checkpoint());
  EXPECT_EQ(engine.learners(), 3);
}

TEST(CheckpointManifest, GeometryAppliesFromShapes) {
  core::CheckpointManifest m;
  m.shapes["agent0_actor"] = "34:48:48:4";
  m.shapes["agent0_opp0"] = "26:24:4";
  m.shapes["slow_down_actor"] = "8:40:40:4";
  core::HeroConfig cfg;
  core::apply_manifest_geometry(m, &cfg);
  EXPECT_EQ(cfg.high.hidden, (std::vector<std::size_t>{48, 48}));
  EXPECT_EQ(cfg.opponent.hidden, (std::vector<std::size_t>{24}));
  EXPECT_EQ(cfg.skill.sac.hidden, (std::vector<std::size_t>{40, 40}));
}

TEST(CheckpointManifest, GeometryRejectsMalformedShape) {
  core::CheckpointManifest m;
  m.shapes["agent0_actor"] = "34:x:4";
  core::HeroConfig cfg;
  EXPECT_THROW(core::apply_manifest_geometry(m, &cfg), std::runtime_error);
  m.shapes["agent0_actor"] = "34";
  EXPECT_THROW(core::apply_manifest_geometry(m, &cfg), std::runtime_error);
}

// ----------------------------------------------- serving equivalence ----

// Fills `req` for this tick and asks `engine` for commands via a batch of
// the given session/request groupings.
void expect_same_responses(const std::vector<ActResponse>& a,
                           const std::vector<ActResponse>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].linear, b[i].linear) << "slot " << i;    // bitwise
    EXPECT_EQ(a[i].angular, b[i].angular) << "slot " << i;  // bitwise
    EXPECT_EQ(a[i].option, b[i].option) << "slot " << i;
  }
}

TEST(ServingEquivalence, BatchedEqualsBatchSizeOne) {
  const std::string dir = make_checkpoint("ckpt_equiv", core::HeroConfig{});
  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine batched(scenario, core::HeroConfig{}, dir);
  PolicyEngine single(scenario, core::HeroConfig{}, dir);

  constexpr int kClients = 4;
  std::vector<std::uint32_t> sa, sb;
  std::vector<sim::LaneWorld> worlds_a, worlds_b;
  std::vector<Rng> rngs_a, rngs_b;
  for (int c = 0; c < kClients; ++c) {
    sa.push_back(batched.open_session(100 + static_cast<unsigned>(c), false));
    sb.push_back(single.open_session(100 + static_cast<unsigned>(c), false));
    worlds_a.emplace_back(scenario.config);
    worlds_b.emplace_back(scenario.config);
    rngs_a.emplace_back(7u * static_cast<unsigned>(c + 1));
    rngs_b.emplace_back(7u * static_cast<unsigned>(c + 1));
    worlds_a.back().reset(rngs_a.back());
    worlds_b.back().reset(rngs_b.back());
  }

  std::vector<ActRequest> reqs(kClients);
  std::vector<ActResponse> batched_resp, one_resp;
  std::vector<ActResponse> single_resp(kClients);
  std::vector<sim::TwistCmd> cmds(3);
  // Untrained policies end episodes early (collisions), so each client
  // tracks its own fresh-episode flag and re-resets on done.
  std::vector<bool> fresh(kClients, true);
  for (int tick = 0; tick < 25; ++tick) {
    std::vector<std::uint32_t> ids;
    std::vector<const ActRequest*> ptrs;
    for (int c = 0; c < kClients; ++c) {
      const auto s = static_cast<std::size_t>(c);
      fill_request_from_world(worlds_a[s], fresh[s], &reqs[s]);
      reqs[s].request_id = static_cast<std::uint64_t>(tick * kClients + c + 1);
      fresh[s] = false;
      ids.push_back(sa[s]);
      ptrs.push_back(&reqs[s]);
    }
    batched.act_batch(ids, ptrs, &batched_resp);

    for (int c = 0; c < kClients; ++c) {
      const auto s = static_cast<std::size_t>(c);
      single.act_batch({sb[s]}, {&reqs[s]}, &one_resp);
      single_resp[s] = one_resp[0];
    }
    expect_same_responses(batched_resp, single_resp);

    for (int c = 0; c < kClients; ++c) {
      const auto s = static_cast<std::size_t>(c);
      const auto& resp = batched_resp[s];
      for (std::size_t k = 0; k < cmds.size(); ++k) {
        cmds[k].linear = resp.linear[k];
        cmds[k].angular = resp.angular[k];
      }
      worlds_a[s].step(cmds, rngs_a[s]);
      worlds_b[s].step(cmds, rngs_b[s]);
      if (worlds_a[s].done()) {
        worlds_a[s].reset(rngs_a[s]);
        worlds_b[s].reset(rngs_b[s]);
        fresh[s] = true;
      }
    }
  }
}

TEST(ServingEquivalence, ServedMatchesInProcessGreedy) {
  const std::string dir = make_checkpoint("ckpt_inproc", core::HeroConfig{});
  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine engine(scenario, core::HeroConfig{}, dir);

  // In-process reference: a trainer restored from the same checkpoint.
  Rng init_rng(99);
  core::HeroTrainer trainer(scenario, core::HeroConfig{}, init_rng);
  trainer.load(dir);

  const std::uint32_t session = engine.open_session(1, /*explore=*/false);
  Rng world_rng_a(4242), world_rng_b(4242), act_rng(1);
  sim::LaneWorld world_a(scenario.config), world_b(scenario.config);
  world_a.reset(world_rng_a);
  world_b.reset(world_rng_b);
  trainer.begin_episode(world_b);

  ActRequest req;
  std::vector<ActResponse> resp;
  std::vector<sim::TwistCmd> cmds(3);
  bool fresh = true;
  for (int tick = 0; tick < 30 && !world_a.done(); ++tick) {
    fill_request_from_world(world_a, fresh, &req);
    req.request_id = static_cast<std::uint64_t>(tick) + 1;
    fresh = false;
    engine.act_batch({session}, {&req}, &resp);

    const auto ref = trainer.act(world_b, act_rng, /*explore=*/false);
    ASSERT_EQ(ref.size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(resp[0].linear[k], ref[k].linear) << "tick " << tick;    // bitwise
      EXPECT_EQ(resp[0].angular[k], ref[k].angular) << "tick " << tick;  // bitwise
      cmds[k].linear = ref[k].linear;
      cmds[k].angular = ref[k].angular;
    }
    world_a.step(cmds, world_rng_a);
    world_b.step(cmds, world_rng_b);
  }
}

TEST(ServingEquivalence, HotReloadPreservesSessionsAndOutputs) {
  const std::string dir = make_checkpoint("ckpt_reload", core::HeroConfig{});
  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine reloading(scenario, core::HeroConfig{}, dir);
  PolicyEngine steady(scenario, core::HeroConfig{}, dir);

  const std::uint32_t ra = reloading.open_session(3, false);
  const std::uint32_t rb = steady.open_session(3, false);
  Rng wr_a(9), wr_b(9);
  sim::LaneWorld world_a(scenario.config), world_b(scenario.config);
  world_a.reset(wr_a);
  world_b.reset(wr_b);

  ActRequest req;
  std::vector<ActResponse> resp_a, resp_b;
  std::vector<sim::TwistCmd> cmds(3);
  bool fresh = true;
  for (int tick = 0; tick < 20; ++tick) {
    if (tick == 7 || tick == 13) {
      // Reload to the same weights mid-stream: in-flight sessions must
      // carry over and outputs must not so much as flip a bit.
      reloading.reload(dir);
      EXPECT_TRUE(reloading.has_session(ra));
    }
    fill_request_from_world(world_a, fresh, &req);
    req.request_id = static_cast<std::uint64_t>(tick) + 1;
    fresh = false;
    reloading.act_batch({ra}, {&req}, &resp_a);
    steady.act_batch({rb}, {&req}, &resp_b);
    expect_same_responses(resp_a, resp_b);

    for (std::size_t k = 0; k < 3; ++k) {
      cmds[k].linear = resp_a[0].linear[k];
      cmds[k].angular = resp_a[0].angular[k];
    }
    world_a.step(cmds, wr_a);
    world_b.step(cmds, wr_b);
    if (world_a.done()) {
      world_a.reset(wr_a);
      world_b.reset(wr_b);
      fresh = true;
    }
  }
  EXPECT_EQ(reloading.reloads(), 2);
}

TEST(ServingEquivalence, ReloadAcrossWidthsAdoptsNewGeometry) {
  core::HeroConfig narrow;  // default widths
  core::HeroConfig wide;
  wide.high.hidden = {48, 48};
  wide.skill.sac.hidden = {48, 48};
  wide.opponent.hidden = {48};
  const std::string dir_narrow = make_checkpoint("ckpt_w32", narrow);
  const std::string dir_wide = make_checkpoint("ckpt_w48", wide);

  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine engine(scenario, core::HeroConfig{}, dir_narrow);
  const std::uint32_t session = engine.open_session(1, false);

  Rng wr(3);
  sim::LaneWorld world(scenario.config);
  world.reset(wr);
  ActRequest req;
  fill_request_from_world(world, true, &req);
  req.request_id = 1;
  std::vector<ActResponse> resp;
  engine.act_batch({session}, {&req}, &resp);

  // The checkpoint manifest carries its own widths: reloading a 48-wide
  // checkpoint into a server built for 32-wide weights must succeed, keep
  // sessions, and keep answering (obs dims are unchanged).
  engine.reload(dir_wide);
  EXPECT_TRUE(engine.has_session(session));
  req.request_id = 2;
  engine.act_batch({session}, {&req}, &resp);
  EXPECT_EQ(resp[0].request_id, 2u);

  // Reload rejection leaves the active (wide) model serving.
  EXPECT_THROW(engine.reload(dir_wide + "/nonexistent"), std::runtime_error);
  req.request_id = 3;
  engine.act_batch({session}, {&req}, &resp);
  EXPECT_EQ(resp[0].request_id, 3u);
  EXPECT_EQ(engine.reloads(), 1);
}

TEST(ServingEquivalence, EvaluateBatchIsWidthInvariant) {
  const std::string dir = make_checkpoint("ckpt_evalb", core::HeroConfig{});
  auto scenario = sim::cooperative_lane_change(3);
  Rng init_rng(5);
  core::HeroTrainer trainer(scenario, core::HeroConfig{}, init_rng);
  trainer.load(dir);

  const auto a = rl::evaluate_batch(scenario.config, trainer, 77, /*episodes=*/3,
                                    /*batch=*/1, scenario.merger_index,
                                    scenario.merger_target_lane);
  const auto b = rl::evaluate_batch(scenario.config, trainer, 77, /*episodes=*/3,
                                    /*batch=*/3, scenario.merger_index,
                                    scenario.merger_target_lane);
  EXPECT_EQ(a.mean_reward, b.mean_reward);  // bitwise
  EXPECT_EQ(a.collision_rate, b.collision_rate);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.mean_speed, b.mean_speed);
}

// ------------------------------------------------- socket end-to-end ----

TEST(ServeSocket, HelloActReloadShutdown) {
  const std::string dir = make_checkpoint("ckpt_sock", core::HeroConfig{});
  auto scenario = sim::cooperative_lane_change(3);
  PolicyEngine engine(scenario, core::HeroConfig{}, dir);

  ServerConfig cfg;
  cfg.socket_path =
      (std::filesystem::path(::testing::TempDir()) / "ts.sock").string();
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_us = 200;
  ServeServer server(engine, cfg);
  std::thread srv([&] { server.run(); });

  {
    ServeClient client(cfg.socket_path);
    sim::LaneWorld world(scenario.config);
    Rng rng(21);
    world.reset(rng);

    Hello hello;
    hello.learners = 3;
    hello.hl_dim = static_cast<std::uint32_t>(world.high_level_obs_dim());
    hello.ll_dim = static_cast<std::uint32_t>(world.low_level_obs_dim());
    hello.num_lanes = static_cast<std::uint32_t>(world.track().num_lanes());
    client.hello(hello);

    ActRequest req;
    std::vector<sim::TwistCmd> cmds(3);
    bool fresh = true;
    for (int tick = 0; tick < 10; ++tick) {
      fill_request_from_world(world, fresh, &req);
      req.request_id = static_cast<std::uint64_t>(tick) + 1;
      fresh = false;
      const ActResponse resp = client.act(req);
      EXPECT_EQ(resp.request_id, req.request_id);
      for (std::size_t k = 0; k < 3; ++k) {
        cmds[k].linear = resp.linear[k];
        cmds[k].angular = resp.angular[k];
      }
      world.step(cmds, rng);
      if (world.done()) {
        world.reset(rng);
        fresh = true;
      }
      if (tick == 4) {
        const ReloadAck ack = client.reload(dir);
        EXPECT_EQ(ack.ok, 1) << ack.message;
      }
    }

    // A dimension-mismatched Hello on a second connection is rejected with
    // a message naming the mismatch; the first session is unaffected.
    ServeClient bad(cfg.socket_path);
    Hello wrong = hello;
    wrong.hl_dim += 1;
    try {
      bad.hello(wrong);
      FAIL() << "mismatched Hello accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos);
    }

    fill_request_from_world(world, false, &req);
    req.request_id = 99;
    EXPECT_EQ(client.act(req).request_id, 99u);
    client.shutdown_server();
  }
  srv.join();
  EXPECT_EQ(server.responses_sent(), server.requests_received());
}

}  // namespace
}  // namespace hero::serve
