// Behavioral tests for the annotated sync primitives (common/sync.h):
// hero::Mutex / MutexLock / CondVar must be drop-in correct replacements for
// the std primitives they wrap. The *annotations* are checked elsewhere —
// by the -Wthread-safety CI pass over src/ — so these tests only cover
// runtime semantics: mutual exclusion, RAII release, try_lock, and condvar
// wakeup (including the adopt/release dance inside CondVar::wait, which is
// the one piece of nontrivial implementation).
//
// Raw std::thread is fine here: lint rule R5 scopes to src/ (tests, like
// test_obs_stress, drive concurrency directly).

#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using hero::CondVar;
using hero::Mutex;
using hero::MutexLock;

TEST(Sync, MutexProvidesMutualExclusion) {
  Mutex mu;
  long long counter = 0;  // deliberately non-atomic: the lock is the fence
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(Sync, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  bool got = true;
  std::thread contender([&] {
    got = mu.try_lock();
    if (got) mu.unlock();
  });
  contender.join();
  EXPECT_FALSE(got);
  mu.unlock();

  std::thread acquirer([&] {
    got = mu.try_lock();
    if (got) mu.unlock();
  });
  acquirer.join();
  EXPECT_TRUE(got);
}

TEST(Sync, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(Sync, CondVarReacquiresMutexAfterWait) {
  // CondVar::wait adopts the Mutex's native handle and must release it back
  // un-owned-by-the-unique_lock; if the adopt/release dance were wrong the
  // waiter side would unlock a mutex it no longer holds (UB, and the
  // guarded increment below would race).
  Mutex mu;
  CondVar cv;
  int stage = 0;  // guarded by mu
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (stage != 1) cv.wait(mu);
    stage = 2;  // still under mu after wait returns
  });
  {
    MutexLock lock(mu);
    stage = 1;
  }
  cv.notify_one();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

TEST(Sync, CondVarPredicateOverload) {
  Mutex mu;
  CondVar cv;
  int stage = 0;  // guarded by mu
  bool woke = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return stage == 2; });
    woke = true;
  });
  {
    MutexLock lock(mu);
    stage = 1;  // wrong stage: predicate must keep the waiter asleep
  }
  cv.notify_all();
  {
    MutexLock lock(mu);
    stage = 2;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(Sync, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;  // guarded by mu
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& t : threads) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

// The annotation macros must be usable (and zero-cost) on any compiler this
// repo builds with — this TU compiles them under the test toolchain.
struct Guarded {
  Mutex mu;
  int value HERO_GUARDED_BY(mu) = 0;
  void set(int v) HERO_EXCLUDES(mu) {
    MutexLock lock(mu);
    value = v;
  }
  int get() HERO_EXCLUDES(mu) {
    MutexLock lock(mu);
    return value;
  }
};

TEST(Sync, AnnotationMacrosCompileAway) {
  Guarded g;
  g.set(41);
  EXPECT_EQ(g.get(), 41);
}

}  // namespace
