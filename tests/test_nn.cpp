// Unit tests for the NN library: matrix kernels, layer gradients (finite
// differences), losses, optimizers, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "nn/grad_check.h"
#include "nn/losses.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace hero::nn {
namespace {

// -------------------------------------------------------------- Matrix ----

TEST(Matrix, MatmulKnownValues) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  double av[] = {1, 2, 3, 4, 5, 6};
  std::copy(av, av + 6, a.data());
  Matrix b(3, 2);
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(bv, bv + 6, b.data());
  Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.matmul(b), std::logic_error);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  Matrix a = Matrix::xavier(3, 5, rng);
  Matrix t = a.transpose().transpose();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(a(i, j), t(i, j));
}

TEST(Matrix, HcatAndColSlice) {
  Matrix a = Matrix::row({1, 2});
  Matrix b = Matrix::row({3, 4, 5});
  Matrix c = a.hcat(b);
  ASSERT_EQ(c.cols(), 5u);
  EXPECT_DOUBLE_EQ(c(0, 2), 3);
  Matrix s = c.col_slice(2, 5);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3);
  EXPECT_DOUBLE_EQ(s(0, 2), 5);
}

TEST(Matrix, StackRowsRejectsRagged) {
  EXPECT_THROW(Matrix::stack_rows({{1.0, 2.0}, {3.0}}), std::logic_error);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a = Matrix::row({1, 2});
  Matrix b = Matrix::row({3, 5});
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4);
  EXPECT_DOUBLE_EQ(a.hadamard(b)(0, 1), 10);
  EXPECT_DOUBLE_EQ(b.sum(), 8);
  EXPECT_DOUBLE_EQ(b.abs_max(), 5);
}

TEST(Matrix, XavierWithinBound) {
  Rng rng(2);
  Matrix w = Matrix::xavier(10, 20, rng);
  const double bound = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), bound);
  }
}

// ------------------------------------------------------- gradient checks --

TEST(MlpGradients, MseLossFiniteDifference) {
  Rng rng(3);
  Mlp net(4, {8, 8}, 3, rng);
  Matrix x = Matrix::xavier(5, 4, rng);
  Matrix target = Matrix::xavier(5, 3, rng);

  auto loss_fn = [&]() { return mse_loss(net.forward(x), target).loss; };
  net.zero_grad();
  auto loss = mse_loss(net.forward(x), target);
  net.backward(loss.grad);
  EXPECT_LT(max_param_grad_error(net, loss_fn), 1e-5);
}

TEST(MlpGradients, TanhActivationFiniteDifference) {
  Rng rng(4);
  Mlp net(3, {6}, 2, rng, Activation::kTanh, Activation::kTanh);
  Matrix x = Matrix::xavier(4, 3, rng);
  Matrix target(4, 2, 0.3);

  auto loss_fn = [&]() { return mse_loss(net.forward(x), target).loss; };
  net.zero_grad();
  auto loss = mse_loss(net.forward(x), target);
  net.backward(loss.grad);
  EXPECT_LT(max_param_grad_error(net, loss_fn), 1e-5);
}

TEST(MlpGradients, SoftmaxCrossEntropyFiniteDifference) {
  Rng rng(5);
  Mlp net(4, {8}, 5, rng);
  Matrix x = Matrix::xavier(6, 4, rng);
  std::vector<std::size_t> targets = {0, 1, 2, 3, 4, 2};

  auto loss_fn = [&]() {
    return softmax_cross_entropy(net.forward(x), targets).loss;
  };
  net.zero_grad();
  auto loss = softmax_cross_entropy(net.forward(x), targets);
  net.backward(loss.grad);
  EXPECT_LT(max_param_grad_error(net, loss_fn), 1e-5);
}

TEST(MlpGradients, SelectedMseFiniteDifference) {
  Rng rng(6);
  Mlp net(3, {8}, 4, rng);
  Matrix x = Matrix::xavier(5, 3, rng);
  std::vector<std::size_t> cols = {0, 3, 1, 2, 0};
  std::vector<double> targets = {0.1, -0.5, 2.0, 0.0, 1.0};

  auto loss_fn = [&]() {
    return mse_loss_selected(net.forward(x), cols, targets).loss;
  };
  net.zero_grad();
  auto loss = mse_loss_selected(net.forward(x), cols, targets);
  net.backward(loss.grad);
  EXPECT_LT(max_param_grad_error(net, loss_fn), 1e-5);
}

TEST(MlpGradients, InputGradientFiniteDifference) {
  // dL/d(input) must also be exact — the deterministic policy gradient and
  // SAC actor updates rely on it.
  Rng rng(7);
  Mlp net(4, {8}, 1, rng);
  Matrix x = Matrix::xavier(1, 4, rng);

  net.zero_grad();
  Matrix out = net.forward(x);
  Matrix dout(1, 1, 1.0);
  Matrix din = net.backward(dout);

  const double h = 1e-6;
  for (std::size_t j = 0; j < 4; ++j) {
    Matrix xp = x, xm = x;
    xp(0, j) += h;
    xm(0, j) -= h;
    const double numeric =
        (net.forward(xp)(0, 0) - net.forward(xm)(0, 0)) / (2 * h);
    EXPECT_NEAR(din(0, j), numeric, 1e-5);
  }
}

// -------------------------------------------------------------- losses ----

TEST(Losses, SoftmaxRowsSumToOne) {
  Rng rng(8);
  Matrix logits = Matrix::xavier(4, 6, rng) * 10.0;
  Matrix p = softmax(logits);
  for (std::size_t i = 0; i < 4; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 6; ++j) s += p(i, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Losses, SoftmaxStableForHugeLogits) {
  Matrix logits = Matrix::row({1000.0, 999.0, 0.0});
  Matrix p = softmax(logits);
  EXPECT_FALSE(std::isnan(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
  EXPECT_NEAR(p(0, 2), 0.0, 1e-12);
  Matrix lp = log_softmax(logits);
  EXPECT_FALSE(std::isnan(lp(0, 2)));
}

TEST(Losses, EntropyUniformIsLogN) {
  Matrix logits(1, 4, 0.0);
  auto ent = softmax_entropy(logits);
  EXPECT_NEAR(ent[0], std::log(4.0), 1e-12);
}

TEST(Losses, HuberMatchesMseInQuadraticRegion) {
  Matrix pred = Matrix::row({0.3});
  std::vector<std::size_t> cols = {0};
  std::vector<double> targets = {0.1};
  auto h = huber_loss_selected(pred, cols, targets, 1.0);
  // 0.5·d² with d = 0.2
  EXPECT_NEAR(h.loss, 0.5 * 0.04, 1e-12);
  EXPECT_NEAR(h.grad(0, 0), 0.2, 1e-12);
}

TEST(Losses, HuberLinearTail) {
  Matrix pred = Matrix::row({5.0});
  auto h = huber_loss_selected(pred, {0}, {0.0}, 1.0);
  EXPECT_NEAR(h.loss, 1.0 * (5.0 - 0.5), 1e-12);
  EXPECT_NEAR(h.grad(0, 0), 1.0, 1e-12);
}

TEST(Losses, WeightedCrossEntropyScales) {
  Matrix logits = Matrix::row({0.2, -0.1, 0.5});
  std::vector<std::size_t> t = {1};
  std::vector<double> w = {2.0};
  auto plain = softmax_cross_entropy(logits, t);
  auto weighted = softmax_cross_entropy(logits, t, &w);
  EXPECT_NEAR(weighted.loss, 2.0 * plain.loss, 1e-12);
}

// ----------------------------------------------------------- optimizers ---

TEST(Adam, MinimizesQuadratic) {
  // One 1×1 parameter, loss (w−3)².
  Matrix w(1, 1, 0.0), g(1, 1, 0.0);
  Adam opt({{&w, &g}}, 0.1);
  for (int i = 0; i < 500; ++i) {
    g(0, 0) = 2.0 * (w(0, 0) - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w(0, 0), 3.0, 1e-2);
}

TEST(Adam, ZeroesGradAfterStep) {
  Matrix w(1, 1, 0.0), g(1, 1, 5.0);
  Adam opt({{&w, &g}}, 0.1);
  opt.step();
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
}

TEST(Sgd, MomentumAccelerates) {
  Matrix w1(1, 1, 10.0), g1(1, 1, 0.0);
  Matrix w2(1, 1, 10.0), g2(1, 1, 0.0);
  Sgd plain({{&w1, &g1}}, 0.01, 0.0);
  Sgd mom({{&w2, &g2}}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    g1(0, 0) = 2.0 * w1(0, 0);
    g2(0, 0) = 2.0 * w2(0, 0);
    plain.step();
    mom.step();
  }
  EXPECT_LT(std::abs(w2(0, 0)), std::abs(w1(0, 0)));
}

// ------------------------------------------------------------ Mlp utils ---

TEST(Mlp, SoftUpdateInterpolates) {
  Rng rng(9);
  Mlp a(2, {4}, 1, rng), b(2, {4}, 1, rng);
  Mlp b0 = b;
  b.soft_update_from(a, 0.25);
  auto pa = a.params();
  auto pb = b.params();
  auto pb0 = b0.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t k = 0; k < pa[i].value->size(); ++k) {
      const double expected = 0.25 * pa[i].value->data()[k] +
                              0.75 * pb0[i].value->data()[k];
      EXPECT_NEAR(pb[i].value->data()[k], expected, 1e-12);
    }
  }
}

TEST(Mlp, CopyIsDeep) {
  Rng rng(10);
  Mlp a(2, {4}, 1, rng);
  Mlp b = a;
  const std::vector<double> x = {0.5, -0.5};
  const double before = b.forward1(x)[0];
  // Perturb a; b's output must not move.
  a.params()[0].value->data()[0] += 1.0;
  EXPECT_DOUBLE_EQ(b.forward1(x)[0], before);
  EXPECT_NE(a.forward1(x)[0], before);
}

TEST(Mlp, ClipGradNorm) {
  Rng rng(11);
  Mlp net(2, {}, 1, rng);
  for (auto p : net.params()) p.grad->fill(10.0);
  const double norm = net.clip_grad_norm(1.0);
  EXPECT_GT(norm, 1.0);
  double sq = 0;
  for (auto p : net.params())
    for (std::size_t k = 0; k < p.grad->size(); ++k)
      sq += p.grad->data()[k] * p.grad->data()[k];
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-9);
}

TEST(Mlp, NumParamsCountsEverything) {
  Rng rng(12);
  Mlp net(3, {5}, 2, rng);
  // (3·5 + 5) + (5·2 + 2) = 32
  EXPECT_EQ(net.num_params(), 32u);
}

TEST(Mlp, DimsReported) {
  Rng rng(13);
  Mlp net(7, {5}, 2, rng);
  EXPECT_EQ(net.in_dim(), 7u);
  EXPECT_EQ(net.out_dim(), 2u);
}

// -------------------------------------------------------- serialization ---

TEST(Serialize, RoundTripPreservesOutputs) {
  Rng rng(14);
  Mlp a(4, {8}, 3, rng);
  Mlp b(4, {8}, 3, rng);
  std::stringstream ss;
  save_params(a, ss);
  load_params(b, ss);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.9};
  auto ya = a.forward1(x);
  auto yb = b.forward1(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_NEAR(ya[i], yb[i], 1e-12);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(15);
  Mlp a(4, {8}, 3, rng);
  Mlp b(4, {6}, 3, rng);
  std::stringstream ss;
  save_params(a, ss);
  EXPECT_THROW(load_params(b, ss), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  Rng rng(16);
  Mlp a(2, {}, 1, rng);
  std::stringstream ss("not a checkpoint");
  EXPECT_THROW(load_params(a, ss), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(17);
  Mlp a(3, {4}, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "hero_ckpt_test.ckpt").string();
  save_params_file(a, path);
  Mlp b(3, {4}, 2, rng);
  load_params_file(b, path);
  EXPECT_NEAR(a.forward1({1, 2, 3})[0], b.forward1({1, 2, 3})[0], 1e-12);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hero::nn
