// Verifies the zero-allocation contract of the NN hot path: after a warmup
// pass establishes buffer capacity, repeated Mlp::forward/backward calls
// (and the fused Matrix kernels they are built on) must not touch the heap.
//
// Global operator new/delete are replaced with counting versions; this file
// is its own test binary so the replacement cannot leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "nn/losses.h"
#include "nn/mlp.h"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace hero::nn {
namespace {

long allocations_during(const std::function<void()>& fn) {
  const long before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(AllocationCount, MlpForwardBackwardSteadyStateIsAllocFree) {
  Rng rng(1);
  Mlp net(26, {32, 32}, 25, rng);
  Matrix x = Matrix::xavier(64, 26, rng);
  Matrix target(64, 25, 0.1);
  Matrix grad;

  // Warmup: size every workspace/scratch buffer and the param cache.
  for (int i = 0; i < 2; ++i) {
    net.zero_grad();
    mse_loss_into(net.forward(x), target, grad);
    net.backward(grad);
  }

  const long n = allocations_during([&] {
    for (int i = 0; i < 10; ++i) {
      net.zero_grad();
      mse_loss_into(net.forward(x), target, grad);
      net.backward(grad);
    }
  });
  EXPECT_EQ(n, 0) << n << " heap allocations in 10 steady-state iterations";
}

TEST(AllocationCount, FusedKernelsSteadyStateIsAllocFree) {
  Rng rng(2);
  Matrix a = Matrix::xavier(64, 32, rng);
  Matrix b = Matrix::xavier(32, 16, rng);
  Matrix bt = Matrix::xavier(16, 32, rng);
  Matrix bias = Matrix::xavier(1, 16, rng);
  Matrix out1, out2, out3, out4;

  a.matmul_into(b, out1);
  a.matmul_transA_into(a, out2);
  a.matmul_transB_into(bt, out3);
  a.affine_into(b, bias, out4);

  const long n = allocations_during([&] {
    for (int i = 0; i < 10; ++i) {
      a.matmul_into(b, out1);
      a.matmul_transA_into(a, out2);
      a.matmul_transB_into(bt, out3);
      a.affine_into(b, bias, out4);
    }
  });
  EXPECT_EQ(n, 0) << n << " heap allocations in 10 steady-state iterations";
}

TEST(AllocationCount, SmallerBatchReusesCapacity) {
  Rng rng(3);
  Mlp net(16, {32}, 8, rng);
  Matrix big = Matrix::xavier(128, 16, rng);
  Matrix small = Matrix::xavier(16, 16, rng);
  net.forward(big);  // capacity sized for the large batch

  const long n = allocations_during([&] {
    for (int i = 0; i < 10; ++i) net.forward(small);
  });
  EXPECT_EQ(n, 0) << n << " heap allocations when shrinking the batch";
}

}  // namespace
}  // namespace hero::nn
