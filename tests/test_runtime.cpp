// Unit tests for the parallel training runtime: thread pool scheduling,
// counter-based RNG streams, and the sharded replay buffer's determinism
// contract (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "runtime/rng_stream.h"
#include "runtime/rollout.h"
#include "runtime/sharded_replay.h"
#include "runtime/thread_pool.h"

namespace {

using hero::Rng;
using hero::runtime::RolloutRunner;
using hero::runtime::ShardedReplay;
using hero::runtime::ThreadPool;

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSlotsPartitionIsStatic) {
  ThreadPool pool(3);
  std::vector<int> slot_of(100, -1);
  hero::Mutex mu;
  pool.parallel_for_slots(slot_of.size(), [&](std::size_t i, std::size_t slot) {
    hero::MutexLock lock(mu);
    slot_of[i] = static_cast<int>(slot);
  });
  for (std::size_t i = 0; i < slot_of.size(); ++i) {
    EXPECT_EQ(slot_of[i], static_cast<int>(i % 3)) << "index " << i;
  }
}

TEST(ThreadPool, SubmitDrainsBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // destructor joins after draining the queue
  EXPECT_EQ(ran.load(), 64);
}

TEST(RngStream, StreamsAreStableAndDistinct) {
  // Same (seed, stream) → identical sequence; different stream or seed →
  // different sequence. This is the property the determinism contract
  // rests on: a worker's draws depend only on the episode index.
  Rng a = hero::runtime::stream_rng(42, 7);
  Rng b = hero::runtime::stream_rng(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.engine()(), b.engine()());

  std::set<std::uint64_t> first_draws;
  for (std::uint64_t s = 0; s < 64; ++s) {
    first_draws.insert(hero::runtime::stream_rng(42, s).engine()());
  }
  EXPECT_EQ(first_draws.size(), 64u);
  EXPECT_NE(hero::runtime::stream_seed(1, 0), hero::runtime::stream_seed(2, 0));
}

TEST(RolloutRunner, EpisodeStreamsIndependentOfWorkerCount) {
  // The first engine draw of each episode must not depend on how many pool
  // threads execute the round — episode streams are keyed by index alone.
  auto collect = [](std::size_t threads) {
    ThreadPool pool(threads);
    RolloutRunner runner(pool, /*root_seed=*/123);
    std::vector<std::uint64_t> draws(24, 0);
    runner.run_round(0, draws.size(), [&](std::size_t ep, std::size_t, Rng& rng) {
      draws[ep] = rng.engine()();
    });
    return draws;
  };
  EXPECT_EQ(collect(1), collect(4));
  EXPECT_EQ(collect(2), collect(8));
}

TEST(ShardedReplay, PushAndSizesPerShard) {
  ShardedReplay<int> rb(/*total_capacity=*/40, /*num_shards=*/4);
  EXPECT_EQ(rb.num_shards(), 4u);
  EXPECT_EQ(rb.shard_capacity(), 10u);
  rb.push(0, 1);
  rb.push(0, 2);
  rb.push(3, 3);
  EXPECT_EQ(rb.shard_size(0), 2u);
  EXPECT_EQ(rb.shard_size(1), 0u);
  EXPECT_EQ(rb.shard_size(3), 1u);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(ShardedReplay, ShardRingOverwritesOldest) {
  ShardedReplay<int> rb(/*total_capacity=*/4, /*num_shards=*/2);  // 2 per shard
  rb.push(0, 1);
  rb.push(0, 2);
  rb.push(0, 3);  // overwrites 1
  std::vector<int> got;
  rb.drain_front(0, 2, [&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{2, 3}));
  EXPECT_EQ(rb.shard_size(0), 0u);
}

TEST(ShardedReplay, DrainFrontIsFifoAndPartial) {
  ShardedReplay<int> rb(/*total_capacity=*/30, /*num_shards=*/3);
  for (int i = 0; i < 6; ++i) rb.push(1, i);
  std::vector<int> got;
  rb.drain_front(1, 4, [&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(rb.shard_size(1), 2u);
  got.clear();
  rb.drain_front(1, 2, [&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{4, 5}));
}

TEST(ShardedReplay, SampleVisitsShardsRoundRobin) {
  ShardedReplay<int> rb(/*total_capacity=*/30, /*num_shards=*/3);
  // Shard s holds only the value s·100 (+i), shard 1 left empty.
  for (int i = 0; i < 5; ++i) rb.push(0, 0 + i);
  for (int i = 0; i < 5; ++i) rb.push(2, 200 + i);
  Rng rng(7);
  std::vector<int> out;
  rb.sample(8, rng, out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t k = 0; k < out.size(); ++k) {
    // Non-empty shards are {0, 2}; draw k must come from shard (k % 2 ? 2 : 0).
    const int expect_base = (k % 2 == 0) ? 0 : 200;
    EXPECT_GE(out[k], expect_base);
    EXPECT_LT(out[k], expect_base + 100);
  }
}

TEST(ShardedReplay, SampleIsDeterministicForFixedSeed) {
  ShardedReplay<int> rb(/*total_capacity=*/64, /*num_shards=*/4);
  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 10; ++i) rb.push(s, static_cast<int>(s) * 100 + i);
  }
  Rng r1(99), r2(99);
  std::vector<int> a, b;
  rb.sample(32, r1, a);
  rb.sample(32, r2, b);
  EXPECT_EQ(a, b);
}

TEST(ShardedReplay, MergeRestoresEpisodeOrderAcrossSlots) {
  // Simulates a round: episode e runs on slot e % 3 and pushes its items
  // tagged with e; draining per episode in index order must reconstruct the
  // canonical order no matter which slot held it.
  ThreadPool pool(3);
  RolloutRunner runner(pool, 1);
  ShardedReplay<std::pair<int, int>> staging(/*total_capacity=*/300, /*num_shards=*/3);
  constexpr int kEpisodes = 9;
  std::vector<std::size_t> counts(kEpisodes, 0);
  runner.run_round(0, kEpisodes, [&](std::size_t ep, std::size_t slot, Rng& rng) {
    const std::size_t n = 2 + rng.index(3);
    for (std::size_t i = 0; i < n; ++i) {
      staging.push(slot, {static_cast<int>(ep), static_cast<int>(i)});
    }
    counts[ep] = n;
  });
  std::vector<std::pair<int, int>> merged;
  for (int ep = 0; ep < kEpisodes; ++ep) {
    staging.drain_front(ep % 3, counts[ep],
                        [&](std::pair<int, int>&& v) { merged.push_back(v); });
  }
  ASSERT_EQ(merged.size(), std::accumulate(counts.begin(), counts.end(), 0u));
  std::size_t k = 0;
  for (int ep = 0; ep < kEpisodes; ++ep) {
    for (std::size_t i = 0; i < counts[ep]; ++i, ++k) {
      EXPECT_EQ(merged[k].first, ep);
      EXPECT_EQ(merged[k].second, static_cast<int>(i));
    }
  }
}

}  // namespace
