// SpatialIndex unit tests and the sensing-equivalence suite: the shared
// arc-length index (and the lidar's angular-interval cull) are conservative
// pruners, so every observation and collision set must stay *bitwise*
// identical to the all-pairs reference paths — every EXPECT/ASSERT_EQ on a
// double below is an exact comparison on purpose (docs/PERFORMANCE.md,
// "Spatial neighbor index"). Also covers the declarative scenario loader
// that feeds the dense-traffic benchmark.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/batch_lane_world.h"
#include "sim/lidar.h"
#include "sim/scenario.h"
#include "sim/spatial_index.h"

namespace hero::sim {
namespace {

// --------------------------------------------------------- SpatialIndex ---

std::vector<int> query_ids(const SpatialIndex& idx, double x0, double behind,
                           double ahead, int exclude = -1) {
  const int* ids = nullptr;
  const int m = idx.query(x0, behind, ahead, exclude, &ids);
  return std::vector<int>(ids, ids + m);
}

TEST(SpatialIndex, SortsByPositionThenId) {
  const double xs[] = {5.0, 1.0, 3.0};
  SpatialIndex idx;
  idx.build(xs, 3, 8.0);
  ASSERT_TRUE(idx.built());
  ASSERT_EQ(idx.size(), 3);
  EXPECT_EQ(idx.id(0), 1);
  EXPECT_EQ(idx.id(1), 2);
  EXPECT_EQ(idx.id(2), 0);
  EXPECT_DOUBLE_EQ(idx.pos(0), 1.0);
  EXPECT_DOUBLE_EQ(idx.pos(1), 3.0);
  EXPECT_DOUBLE_EQ(idx.pos(2), 5.0);
}

TEST(SpatialIndex, EqualPositionsTieBreakById) {
  const double xs[] = {2.0, 2.0, 2.0, 1.0};
  SpatialIndex idx;
  idx.build(xs, 4, 8.0);
  EXPECT_EQ(idx.id(0), 3);
  EXPECT_EQ(idx.id(1), 0);
  EXPECT_EQ(idx.id(2), 1);
  EXPECT_EQ(idx.id(3), 2);
  EXPECT_EQ(query_ids(idx, 2.0, 0.0, 0.0), (std::vector<int>{0, 1, 2}));
}

TEST(SpatialIndex, WindowQueryIsInclusiveAndAscending) {
  const double xs[] = {5.0, 1.0, 3.0};
  SpatialIndex idx;
  idx.build(xs, 3, 8.0);
  // [0.5, 3.5] — both endpoints of [1.0, 3.0] membership are inclusive.
  EXPECT_EQ(query_ids(idx, 1.0, 0.5, 2.5), (std::vector<int>{1, 2}));
  EXPECT_EQ(query_ids(idx, 2.0, 1.0, 1.0), (std::vector<int>{1, 2}));
  EXPECT_EQ(query_ids(idx, 1.0, 0.0, 0.0), (std::vector<int>{1}));
}

TEST(SpatialIndex, WindowAcrossWrapSeam) {
  const double xs[] = {0.2, 4.0, 7.8};
  SpatialIndex idx;
  idx.build(xs, 3, 8.0);
  // [7.5, 0.5] wrapped: catches both neighbors of the seam, not the far one.
  EXPECT_EQ(query_ids(idx, 0.0, 0.5, 0.5), (std::vector<int>{0, 2}));
  EXPECT_EQ(query_ids(idx, 7.9, 0.5, 0.5), (std::vector<int>{0, 2}));
}

TEST(SpatialIndex, ExcludeDropsOnlyThatId) {
  const double xs[] = {0.2, 4.0, 7.8};
  SpatialIndex idx;
  idx.build(xs, 3, 8.0);
  EXPECT_EQ(query_ids(idx, 0.0, 0.5, 0.5, /*exclude=*/0),
            (std::vector<int>{2}));
}

TEST(SpatialIndex, FullRingWindowReturnsEveryoneElse) {
  const double xs[] = {0.2, 4.0, 7.8, 2.2};
  SpatialIndex idx;
  idx.build(xs, 4, 8.0);
  EXPECT_EQ(query_ids(idx, 3.0, 4.0, 4.0, /*exclude=*/1),
            (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(query_ids(idx, 3.0, 8.0, 8.0), (std::vector<int>{0, 1, 2, 3}));
}

TEST(SpatialIndex, RandomizedQueriesMatchBruteForce) {
  Rng rng(11);
  SpatialIndex idx;
  for (int trial = 0; trial < 200; ++trial) {
    const double circ = rng.uniform(4.0, 50.0);
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 40.0));
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (double& x : xs) x = rng.uniform(0.0, circ);
    idx.build(xs.data(), n, circ);

    const double x0 = rng.uniform(0.0, circ);
    const double behind = rng.uniform(0.0, 0.7 * circ);
    const double ahead = rng.uniform(0.0, 0.7 * circ);
    const int exclude = trial % 2 == 0 ? trial % n : -1;

    // Brute force with the documented window arithmetic, so the comparison
    // is exact (no fmod round-off mismatch).
    std::vector<int> expect;
    if (behind + ahead >= circ) {
      for (int i = 0; i < n; ++i) {
        if (i != exclude) expect.push_back(i);
      }
    } else {
      double lo = x0 - behind;
      if (lo < 0.0) lo += circ;
      double hi = x0 + ahead;
      if (hi >= circ) hi -= circ;
      for (int i = 0; i < n; ++i) {
        const double p = xs[static_cast<std::size_t>(i)];
        const bool in = lo <= hi ? (p >= lo && p <= hi) : (p >= lo || p <= hi);
        if (in && i != exclude) expect.push_back(i);
      }
    }
    ASSERT_EQ(query_ids(idx, x0, behind, ahead, exclude), expect)
        << "trial " << trial << " circ " << circ << " window [" << x0 << " -"
        << behind << " +" << ahead << "]";
  }
}

// ---------------------------------------------- lidar angular-cull phase ---

TEST(LidarCull, MatchesAllPairsOnRandomBoxSets) {
  Rng rng(23);
  LidarSensor lidar({24, 2.0, 0.0});
  std::vector<Obb> boxes;
  std::vector<double> culled(24), reference(24);
  for (int trial = 0; trial < 300; ++trial) {
    boxes.clear();
    const int nb = static_cast<int>(rng.uniform(0.0, 12.0));
    for (int b = 0; b < nb; ++b) {
      // Mix of far, near, and occasionally ego-enclosing boxes.
      const double spread = trial % 4 == 0 ? 0.3 : 2.5;
      boxes.push_back(Obb{{rng.uniform(-spread, spread),
                           rng.uniform(-spread, spread)},
                          rng.uniform(-M_PI, M_PI),
                          rng.uniform(0.05, 0.3),
                          rng.uniform(0.03, 0.2)});
    }
    const double heading = rng.uniform(-M_PI, M_PI);
    lidar.scan_into(0.0, 0.0, heading, boxes.data(), boxes.size(), nullptr,
                    culled.data());
    lidar.scan_into_allpairs(0.0, 0.0, heading, boxes.data(), boxes.size(),
                             nullptr, reference.data());
    for (int b = 0; b < 24; ++b) {
      ASSERT_EQ(culled[static_cast<std::size_t>(b)],
                reference[static_cast<std::size_t>(b)])
          << "trial " << trial << " beam " << b;
    }
  }
}

TEST(LidarCull, ApproxAtan2ErrorStaysWithinCullMargin) {
  // The beam cull locates a box's centre with approx_atan2 and widens its
  // interval by kLidarAtanApproxMaxErr; conservativeness therefore rests on
  // the approximation error never exceeding that constant. Sweep the full
  // circle densely plus randomized points, comparing against std::atan2 on
  // the wrapped difference (the ±π seam is a 2π jump, not an error).
  const auto wrapped_err = [](double approx, double exact) {
    double d = approx - exact;
    if (d > M_PI) d -= 2.0 * M_PI;
    if (d < -M_PI) d += 2.0 * M_PI;
    return std::abs(d);
  };
  double worst = 0.0;
  for (int i = 0; i < 2000000; ++i) {
    const double theta = -M_PI + 2.0 * M_PI * (static_cast<double>(i) + 0.5) /
                                     2000000.0;
    const double x = std::cos(theta);
    const double y = std::sin(theta);
    worst = std::max(worst, wrapped_err(approx_atan2(y, x), std::atan2(y, x)));
  }
  Rng rng(31);
  for (int i = 0; i < 500000; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    const double y = rng.uniform(-3.0, 3.0);
    if (x == 0.0 && y == 0.0) continue;
    worst = std::max(worst, wrapped_err(approx_atan2(y, x), std::atan2(y, x)));
  }
  EXPECT_LT(worst, kLidarAtanApproxMaxErr)
      << "cull margin no longer covers the atan2 approximation error";
}

TEST(LidarCull, PreservesNoiseDrawOrder) {
  // Noise is applied per beam in ascending order *after* the box loop, so a
  // same-seeded stream must produce identical scans on both narrow phases.
  Rng rng(29);
  LidarSensor lidar({24, 2.0, 0.05});
  std::vector<Obb> boxes;
  std::vector<double> culled(24), reference(24);
  for (int trial = 0; trial < 100; ++trial) {
    boxes.clear();
    const int nb = static_cast<int>(rng.uniform(0.0, 8.0));
    for (int b = 0; b < nb; ++b) {
      boxes.push_back(Obb{{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)},
                          rng.uniform(-M_PI, M_PI), 0.15, 0.09});
    }
    Rng n1(400 + static_cast<unsigned>(trial));
    Rng n2(400 + static_cast<unsigned>(trial));
    lidar.scan_into(0.0, 0.0, 0.3, boxes.data(), boxes.size(), &n1,
                    culled.data());
    lidar.scan_into_allpairs(0.0, 0.0, 0.3, boxes.data(), boxes.size(), &n2,
                             reference.data());
    for (int b = 0; b < 24; ++b) {
      ASSERT_EQ(culled[static_cast<std::size_t>(b)],
                reference[static_cast<std::size_t>(b)])
          << "trial " << trial << " beam " << b;
    }
  }
}

// ------------------------------------------- world sensing equivalence ----

LaneWorldConfig sensing_test_config(int vehicles) {
  LaneWorldConfig cfg;
  cfg.track = {8.0, 0.35, 2};
  cfg.dt = 0.5;
  cfg.max_steps = 12;
  for (int i = 0; i < vehicles; ++i) {
    VehicleSpec s;
    s.start_lane = i % 2;
    s.start_x = 0.9 * i;
    s.start_speed = 0.1;
    s.scripted = i == vehicles - 1;  // one plodder
    cfg.specs.push_back(s);
  }
  return cfg;
}

VehicleState random_state(Rng& rng, double circumference, bool clustered) {
  VehicleState st;
  st.x = rng.uniform(0.0, clustered ? 1.5 : circumference);
  st.y = rng.uniform(-0.4, 0.75);
  st.heading = rng.uniform(-0.8, 0.8);
  st.speed = rng.uniform(0.0, 0.2);
  return st;
}

// The squared-distance reach prune must make exactly the same keep/skip
// decision as the hypot compare it replaced, including at the threshold
// itself: sweep an obstacle across the prune boundary and require bitwise
// obs agreement between the indexed and all-pairs paths at every offset.
TEST(SensingEquivalence, ReachPruneBoundaryIsExact) {
  auto cfg = sensing_test_config(2);
  auto cfg_off = cfg;
  cfg_off.use_spatial_index = false;
  LaneWorld won(cfg), woff(cfg_off);
  const double reach =
      std::hypot(0.5 * cfg.vehicle.length, 0.5 * cfg.vehicle.width);
  const double thr = cfg.lidar.max_range + reach + 1e-9;
  const double offsets[] = {-1e-3, -1e-12, 0.0, 1e-12, 1e-3, -1.2};
  std::vector<double> on(won.high_level_obs_dim());
  std::vector<double> off(woff.high_level_obs_dim());
  for (const double d : offsets) {
    VehicleState ego;
    ego.x = 1.0;
    ego.speed = 0.1;
    VehicleState other;
    other.x = won.track().wrap_x(1.0 + thr + d);
    other.speed = 0.1;
    won.mutable_vehicle(0).mutable_state() = ego;
    won.mutable_vehicle(1).mutable_state() = other;
    woff.mutable_vehicle(0).mutable_state() = ego;
    woff.mutable_vehicle(1).mutable_state() = other;
    won.high_level_obs_into(0, on.data());
    woff.high_level_obs_into(0, off.data());
    for (std::size_t k = 0; k < on.size(); ++k) {
      ASSERT_EQ(on[k], off[k]) << "offset " << d << " dim " << k;
    }
  }
  // Sanity: a genuinely near leader is visible on both paths.
  won.mutable_vehicle(1).mutable_state().x = 2.0;
  woff.mutable_vehicle(1).mutable_state().x = 2.0;
  won.high_level_obs_into(0, on.data());
  woff.high_level_obs_into(0, off.data());
  EXPECT_EQ(on[0], off[0]);
  EXPECT_NEAR(on[0], 0.425, 1e-9);  // (1.0 − half_len) / max_range
}

TEST(SensingEquivalence, SerialIndexedMatchesAllPairsOn300RandomScenes) {
  auto cfg = sensing_test_config(8);
  auto cfg_off = cfg;
  cfg_off.use_spatial_index = false;
  LaneWorld won(cfg), woff(cfg_off);
  Rng scene(77);
  const int n = won.num_learners();
  const int v = won.num_vehicles();
  std::vector<double> hl_on(won.high_level_obs_dim());
  std::vector<double> hl_off(woff.high_level_obs_dim());
  std::vector<double> ll_on(won.low_level_obs_dim());
  std::vector<double> ll_off(woff.low_level_obs_dim());
  std::vector<TwistCmd> cmds(static_cast<std::size_t>(n));
  int collisions_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    {
      // Clear any done/collision state from the previous trial's step; the
      // identical seeds keep both worlds' reset draws in lockstep.
      Rng r1(7), r2(7);
      won.reset(r1);
      woff.reset(r2);
    }
    for (int i = 0; i < v; ++i) {
      const VehicleState st =
          random_state(scene, cfg.track.circumference, trial % 3 == 0);
      won.mutable_vehicle(i).mutable_state() = st;
      woff.mutable_vehicle(i).mutable_state() = st;
    }
    for (int i = 0; i < v; ++i) {
      won.high_level_obs_into(i, hl_on.data());
      woff.high_level_obs_into(i, hl_off.data());
      for (std::size_t k = 0; k < hl_on.size(); ++k) {
        ASSERT_EQ(hl_on[k], hl_off[k]) << "trial " << trial << " vehicle " << i;
      }
      for (int ref = 0; ref < won.track().num_lanes(); ++ref) {
        won.low_level_obs_into(i, ref, ll_on.data());
        woff.low_level_obs_into(i, ref, ll_off.data());
        for (std::size_t k = 0; k < ll_on.size(); ++k) {
          ASSERT_EQ(ll_on[k], ll_off[k])
              << "trial " << trial << " vehicle " << i << " ref " << ref;
        }
      }
    }
    // One step with identical streams: the indexed broad-phase must produce
    // the exact all-pairs collision set and rewards.
    for (auto& c : cmds) c = {scene.uniform(0.0, 0.2), scene.uniform(-0.5, 0.5)};
    Rng r1(500 + static_cast<unsigned>(trial));
    Rng r2(500 + static_cast<unsigned>(trial));
    auto out_on = won.step(cmds, r1);
    auto out_off = woff.step(cmds, r2);
    ASSERT_EQ(out_on.collided, out_off.collided) << "trial " << trial;
    ASSERT_EQ(out_on.reward, out_off.reward) << "trial " << trial;
    if (out_on.collision) ++collisions_seen;
  }
  EXPECT_GT(collisions_seen, 10);  // the generator exercises both outcomes
  EXPECT_LT(collisions_seen, 300);
}

TEST(SensingEquivalence, SerialNoisyObsMatchWithSameSeed) {
  auto cfg = sensing_test_config(6);
  cfg.lidar.noise_stddev = 0.05;
  cfg.camera.noise_stddev = 0.05;
  auto cfg_off = cfg;
  cfg_off.use_spatial_index = false;
  LaneWorld won(cfg), woff(cfg_off);
  Rng scene(91);
  std::vector<double> hl_on(won.high_level_obs_dim());
  std::vector<double> hl_off(woff.high_level_obs_dim());
  std::vector<double> ll_on(won.low_level_obs_dim());
  std::vector<double> ll_off(woff.low_level_obs_dim());
  for (int trial = 0; trial < 50; ++trial) {
    for (int i = 0; i < won.num_vehicles(); ++i) {
      const VehicleState st =
          random_state(scene, cfg.track.circumference, trial % 2 == 0);
      won.mutable_vehicle(i).mutable_state() = st;
      woff.mutable_vehicle(i).mutable_state() = st;
    }
    for (int i = 0; i < won.num_vehicles(); ++i) {
      Rng n1(700 + static_cast<unsigned>(trial));
      Rng n2(700 + static_cast<unsigned>(trial));
      won.high_level_obs_into(i, hl_on.data(), &n1);
      woff.high_level_obs_into(i, hl_off.data(), &n2);
      for (std::size_t k = 0; k < hl_on.size(); ++k) {
        ASSERT_EQ(hl_on[k], hl_off[k]) << "trial " << trial << " vehicle " << i;
      }
      won.low_level_obs_into(i, 1, ll_on.data(), &n1);
      woff.low_level_obs_into(i, 1, ll_off.data(), &n2);
      for (std::size_t k = 0; k < ll_on.size(); ++k) {
        ASSERT_EQ(ll_on[k], ll_off[k]) << "trial " << trial << " vehicle " << i;
      }
    }
  }
}

TEST(SensingEquivalence, BatchSingleEnvMatchesAllPairsOn300RandomScenes) {
  auto cfg = sensing_test_config(8);
  auto cfg_off = cfg;
  cfg_off.use_spatial_index = false;
  BatchLaneWorld bw(cfg, 1);
  LaneWorld ref(cfg_off);
  Rng scene(123);
  std::vector<double> hl_b(bw.high_level_obs_dim());
  std::vector<double> hl_r(ref.high_level_obs_dim());
  std::vector<double> ll_b(bw.low_level_obs_dim());
  std::vector<double> ll_r(ref.low_level_obs_dim());
  for (int trial = 0; trial < 300; ++trial) {
    for (int i = 0; i < ref.num_vehicles(); ++i) {
      const VehicleState st =
          random_state(scene, cfg.track.circumference, trial % 3 == 0);
      bw.set_state(0, i, st);
      ref.mutable_vehicle(i).mutable_state() = st;
    }
    for (int i = 0; i < ref.num_vehicles(); ++i) {
      bw.high_level_obs_into(0, i, hl_b.data());
      ref.high_level_obs_into(i, hl_r.data());
      for (std::size_t k = 0; k < hl_b.size(); ++k) {
        ASSERT_EQ(hl_b[k], hl_r[k]) << "trial " << trial << " vehicle " << i;
      }
      for (int lane = 0; lane < ref.track().num_lanes(); ++lane) {
        bw.low_level_obs_into(0, i, lane, ll_b.data());
        ref.low_level_obs_into(i, lane, ll_r.data());
        for (std::size_t k = 0; k < ll_b.size(); ++k) {
          ASSERT_EQ(ll_b[k], ll_r[k])
              << "trial " << trial << " vehicle " << i << " lane " << lane;
        }
      }
    }
  }
}

TEST(SensingEquivalence, BatchSixteenEnvsMatchAllPairsReference) {
  auto cfg = sensing_test_config(6);
  auto cfg_off = cfg;
  cfg_off.use_spatial_index = false;
  BatchLaneWorld bw(cfg, 16);
  LaneWorld ref(cfg_off);
  Rng scene(321);
  std::vector<double> hl_b(bw.high_level_obs_dim());
  std::vector<double> hl_r(ref.high_level_obs_dim());
  std::vector<double> ll_b(bw.low_level_obs_dim());
  std::vector<double> ll_r(ref.low_level_obs_dim());
  std::vector<VehicleState> states(
      static_cast<std::size_t>(16 * ref.num_vehicles()));
  for (int round = 0; round < 20; ++round) {
    // Populate all 16 envs first, then compare — a per-env index that leaked
    // state across lanes would fail here.
    for (int e = 0; e < 16; ++e) {
      for (int i = 0; i < ref.num_vehicles(); ++i) {
        const VehicleState st =
            random_state(scene, cfg.track.circumference, (round + e) % 3 == 0);
        states[static_cast<std::size_t>(e * ref.num_vehicles() + i)] = st;
        bw.set_state(e, i, st);
      }
    }
    for (int e = 0; e < 16; ++e) {
      for (int i = 0; i < ref.num_vehicles(); ++i) {
        ref.mutable_vehicle(i).mutable_state() =
            states[static_cast<std::size_t>(e * ref.num_vehicles() + i)];
      }
      for (int i = 0; i < ref.num_vehicles(); ++i) {
        bw.high_level_obs_into(e, i, hl_b.data());
        ref.high_level_obs_into(i, hl_r.data());
        for (std::size_t k = 0; k < hl_b.size(); ++k) {
          ASSERT_EQ(hl_b[k], hl_r[k])
              << "round " << round << " env " << e << " vehicle " << i;
        }
        bw.low_level_obs_into(e, i, 1, ll_b.data());
        ref.low_level_obs_into(i, 1, ll_r.data());
        for (std::size_t k = 0; k < ll_b.size(); ++k) {
          ASSERT_EQ(ll_b[k], ll_r[k])
              << "round " << round << " env " << e << " vehicle " << i;
        }
      }
    }
  }
}

// ------------------------------------------------------ scenario loader ---

std::string write_scenario(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream(path) << body;
  return path;
}

TEST(ScenarioLoader, GeneratorLaysOutMixedTraffic) {
  const std::string path = write_scenario("gen.json", R"({
    "track": {"circumference": 12.0, "lane_width": 0.35, "num_lanes": 3},
    "max_steps": 40,
    "traffic": {"num_vehicles": 12, "plodder_every": 4,
                "start_speed": 0.1, "plodder_speed": 0.04,
                "start_x_jitter": 0.05}
  })");
  const Scenario sc = load_scenario(path);
  ASSERT_EQ(sc.config.specs.size(), 12u);
  EXPECT_EQ(sc.config.track.num_lanes, 3);
  EXPECT_EQ(sc.config.max_steps, 40);
  for (int i = 0; i < 12; ++i) {
    const VehicleSpec& sp = sc.config.specs[static_cast<std::size_t>(i)];
    EXPECT_EQ(sp.start_lane, i % 3) << "vehicle " << i;
    EXPECT_EQ(sp.scripted, i % 4 == 3) << "vehicle " << i;
    EXPECT_DOUBLE_EQ(sp.start_x_jitter, 0.05);
  }
  // 4 vehicles per lane on a 12 m ring: spacing 3 m, lane-staggered by 1 m.
  EXPECT_DOUBLE_EQ(sc.config.specs[0].start_x, 0.0);
  EXPECT_DOUBLE_EQ(sc.config.specs[1].start_x, 1.0);
  EXPECT_DOUBLE_EQ(sc.config.specs[2].start_x, 2.0);
  EXPECT_DOUBLE_EQ(sc.config.specs[3].start_x, 3.0);
  EXPECT_EQ(sc.merger_index, 0);
  EXPECT_FALSE(sc.config.specs[0].scripted);
}

TEST(ScenarioLoader, VehicleOverrideSweepsDensity) {
  const std::string path = write_scenario("gen_override.json", R"({
    "track": {"circumference": 48.0, "num_lanes": 3},
    "traffic": {"num_vehicles": 128, "plodder_every": 4}
  })");
  EXPECT_EQ(load_scenario(path).config.specs.size(), 128u);
  EXPECT_EQ(load_scenario(path, 64).config.specs.size(), 64u);
  EXPECT_EQ(load_scenario(path, 256).config.specs.size(), 256u);
}

TEST(ScenarioLoader, ExplicitVehicleList) {
  const std::string path = write_scenario("explicit.json", R"({
    "merger_index": 1, "merger_target_lane": 0,
    "vehicles": [
      {"lane": 0, "x": 2.5, "scripted": true, "scripted_speed": 0.03},
      {"lane": 1, "x": 1.0, "x_jitter": 0.2, "speed": 0.12}
    ]
  })");
  const Scenario sc = load_scenario(path);
  ASSERT_EQ(sc.config.specs.size(), 2u);
  EXPECT_TRUE(sc.config.specs[0].scripted);
  EXPECT_DOUBLE_EQ(sc.config.specs[0].scripted_speed, 0.03);
  EXPECT_EQ(sc.config.specs[1].start_lane, 1);
  EXPECT_DOUBLE_EQ(sc.config.specs[1].start_x_jitter, 0.2);
  EXPECT_DOUBLE_EQ(sc.config.specs[1].start_speed, 0.12);
  EXPECT_EQ(sc.merger_index, 1);
  EXPECT_EQ(sc.merger_target_lane, 0);
}

TEST(ScenarioLoader, SpatialIndexKnobIsHonored) {
  const std::string path = write_scenario("noindex.json", R"({
    "use_spatial_index": false,
    "traffic": {"num_vehicles": 4}
  })");
  EXPECT_FALSE(load_scenario(path).config.use_spatial_index);
}

TEST(ScenarioLoader, CheckedInDenseScenarioLoadsAndRuns) {
  const Scenario sc =
      load_scenario(HERO_SCENARIO_DIR "/dense_traffic.json", 64);
  EXPECT_EQ(sc.config.specs.size(), 64u);
  EXPECT_EQ(sc.config.track.num_lanes, 3);
  EXPECT_TRUE(sc.config.use_spatial_index);
  EXPECT_FALSE(sc.config.specs[static_cast<std::size_t>(sc.merger_index)]
                   .scripted);
  // The generated layout must actually reset and step.
  LaneWorld world(sc.config);
  Rng rng(3);
  world.reset(rng);
  std::vector<TwistCmd> cmds(static_cast<std::size_t>(world.num_learners()),
                             TwistCmd{0.1, 0.0});
  auto out = world.step(cmds, rng);
  EXPECT_EQ(out.reward.size(), static_cast<std::size_t>(world.num_learners()));
}

TEST(ScenarioLoader, RejectsInvalidConfigs) {
  EXPECT_THROW(load_scenario("/nonexistent/scenario.json"), std::runtime_error);
  EXPECT_THROW(load_scenario(write_scenario("bad.json", "{not json")),
               std::runtime_error);
  EXPECT_THROW(load_scenario(write_scenario("neither.json", R"({"dt": 0.5})")),
               std::runtime_error);
  EXPECT_THROW(load_scenario(write_scenario("both.json", R"({
    "vehicles": [{"lane": 0}], "traffic": {"num_vehicles": 2}
  })")),
               std::runtime_error);
  // Override only makes sense with a generator block.
  EXPECT_THROW(load_scenario(write_scenario("explicit2.json", R"({
    "vehicles": [{"lane": 0}]
  })"),
                             32),
               std::runtime_error);
  // 64 vehicles on an 8 m two-lane ring cannot hold a 0.3 m vehicle.
  EXPECT_THROW(load_scenario(write_scenario("packed.json", R"({
    "traffic": {"num_vehicles": 64}
  })")),
               std::runtime_error);
  // plodder_every = 1 scripts every vehicle: no learners left.
  EXPECT_THROW(load_scenario(write_scenario("nolearner.json", R"({
    "traffic": {"num_vehicles": 4, "plodder_every": 1}
  })")),
               std::runtime_error);
  // merger_index naming a scripted vehicle.
  EXPECT_THROW(load_scenario(write_scenario("scriptedmerger.json", R"({
    "merger_index": 0,
    "vehicles": [{"lane": 0, "scripted": true}, {"lane": 1}]
  })")),
               std::runtime_error);
  EXPECT_THROW(load_scenario(write_scenario("badlane.json", R"({
    "merger_target_lane": 5,
    "traffic": {"num_vehicles": 4}
  })")),
               std::runtime_error);
  EXPECT_THROW(load_scenario(write_scenario("offtrack.json", R"({
    "vehicles": [{"lane": 7}]
  })")),
               std::runtime_error);
}

}  // namespace
}  // namespace hero::sim
