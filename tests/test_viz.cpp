// Tests for the visualization module: SVG generation, curve plotting,
// trajectory recording/rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/scenario.h"
#include "viz/plot.h"
#include "viz/trajectory.h"

namespace hero::viz {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(Svg, DocumentStructure) {
  SvgDocument svg(100, 50);
  svg.line({0, 0}, {10, 10}, "#000");
  svg.circle({5, 5}, 2, "red");
  svg.text({1, 1}, "hi");
  const std::string s = svg.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find(">hi</text>"), std::string::npos);
  EXPECT_NE(s.find("width='100'"), std::string::npos);
}

TEST(Svg, PolylineSkipsDegenerate) {
  SvgDocument svg(10, 10);
  svg.polyline({{1, 1}}, "#000");  // single point: nothing emitted
  EXPECT_EQ(svg.str().find("<polyline"), std::string::npos);
  svg.polyline({{1, 1}, {2, 2}}, "#000");
  EXPECT_NE(svg.str().find("<polyline"), std::string::npos);
}

TEST(Svg, RotatedRectEncodesTransform) {
  SvgDocument svg(10, 10);
  svg.rotated_rect({5, 5}, 2, 1, 30, "#123456");
  EXPECT_NE(svg.str().find("rotate(30 5 5)"), std::string::npos);
}

TEST(Svg, PaletteNonEmptyAndDistinct) {
  const auto& p = series_palette();
  ASSERT_GE(p.size(), 5u);
  for (std::size_t i = 0; i < p.size(); ++i)
    for (std::size_t j = i + 1; j < p.size(); ++j) EXPECT_NE(p[i], p[j]);
}

TEST(Plot, WritesOneSeriesPerInput) {
  const auto path =
      (std::filesystem::temp_directory_path() / "hero_plot_test.svg").string();
  std::vector<Series> series = {{"a", {1, 2, 3, 4}}, {"b", {4, 3, 2, 1}}};
  PlotOptions opts;
  opts.title = "test";
  plot_series(series, opts, path);
  const std::string s = read_file(path);
  EXPECT_EQ(count_occurrences(s, "<polyline"), 2u);
  EXPECT_NE(s.find(">a</text>"), std::string::npos);
  EXPECT_NE(s.find(">b</text>"), std::string::npos);
  EXPECT_NE(s.find(">test</text>"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Plot, HandlesConstantSeries) {
  const auto path =
      (std::filesystem::temp_directory_path() / "hero_plot_const.svg").string();
  plot_series({{"flat", {2, 2, 2}}}, {}, path);
  EXPECT_FALSE(read_file(path).empty());
  std::filesystem::remove(path);
}

TEST(Plot, RejectsEmptyAndTooShort) {
  EXPECT_THROW(plot_series({}, {}, "/tmp/x.svg"), std::logic_error);
  EXPECT_THROW(plot_series({{"one", {1.0}}}, {}, "/tmp/x.svg"), std::logic_error);
}

TEST(Trajectory, RecordsFramesAndCollision) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  Rng rng(1);
  world.reset(rng);

  TrajectoryRecorder rec;
  rec.start(world);
  EXPECT_EQ(rec.steps(), 0);
  EXPECT_EQ(rec.num_vehicles(), 4);

  int steps = 0;
  while (!world.done()) {
    auto r = world.step(std::vector<sim::TwistCmd>(3, {0.2, 0.0}), rng);
    rec.record(world, r.collision);
    ++steps;
  }
  EXPECT_EQ(rec.steps(), steps);
  // Full speed into the plodder ⇒ a collision must have been recorded.
  EXPECT_TRUE(rec.had_collision());
  EXPECT_GT(rec.collision_step(), 0);
  EXPECT_LE(rec.collision_step(), steps);
}

TEST(Trajectory, RenderProducesFootprintsPerVehiclePerFrame) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  Rng rng(2);
  world.reset(rng);
  TrajectoryRecorder rec;
  rec.start(world);
  for (int t = 0; t < 5; ++t) {
    auto r = world.step(std::vector<sim::TwistCmd>(3, {0.05, 0.0}), rng);
    rec.record(world, r.collision);
    if (world.done()) break;
  }
  const auto path =
      (std::filesystem::temp_directory_path() / "hero_traj_test.svg").string();
  rec.render_svg(path, world.track());
  const std::string s = read_file(path);
  // 4 vehicles × 6 frames of rotated rect footprints + the road rectangle.
  EXPECT_GE(count_occurrences(s, "rotate("),
            static_cast<std::size_t>(4 * (rec.steps() + 1)));
  EXPECT_NE(s.find("stroke-dasharray"), std::string::npos);  // lane marking
  std::filesystem::remove(path);
}

TEST(Trajectory, RecordBeforeStartThrows) {
  auto sc = sim::cooperative_lane_change();
  sim::LaneWorld world(sc.config);
  TrajectoryRecorder rec;
  EXPECT_THROW(rec.record(world, false), std::logic_error);
}

}  // namespace
}  // namespace hero::viz
