// Unit tests for the simulator substrate: geometry primitives, track
// arithmetic, vehicle kinematics, lidar and camera models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/batch_lane_world.h"
#include "sim/features.h"
#include "sim/lidar.h"
#include "sim/track.h"
#include "sim/vehicle.h"

namespace hero::sim {
namespace {

// ------------------------------------------------------------ geometry ----

TEST(Geometry, WrapAngle) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * M_PI), M_PI, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_angle(M_PI + 0.1), -M_PI + 0.1, 1e-12);
}

TEST(Geometry, Vec2Ops) {
  Vec2 a{1, 2}, b{3, -1};
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_NEAR((Vec2{3, 4}).norm(), 5.0, 1e-12);
  Vec2 r = Vec2{1, 0}.rotated(M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Geometry, ObbCorners) {
  Obb box{{0, 0}, 0.0, 2.0, 1.0};
  auto cs = box.corners();
  double max_x = -1e9, max_y = -1e9;
  for (auto& c : cs) {
    max_x = std::max(max_x, c.x);
    max_y = std::max(max_y, c.y);
  }
  EXPECT_NEAR(max_x, 2.0, 1e-12);
  EXPECT_NEAR(max_y, 1.0, 1e-12);
}

TEST(Geometry, ObbOverlapAxisAligned) {
  Obb a{{0, 0}, 0.0, 1.0, 0.5};
  Obb b{{1.5, 0}, 0.0, 1.0, 0.5};
  EXPECT_TRUE(obb_overlap(a, b));  // gap 1.5 < 1+1
  Obb c{{2.5, 0}, 0.0, 1.0, 0.5};
  EXPECT_FALSE(obb_overlap(a, c));
}

TEST(Geometry, ObbOverlapRotated) {
  // Half-0.5 squares: an axis-aligned one at the origin and a 45°-rotated
  // one on the diagonal. Along the diagonal the supports are 0.707 and 0.5,
  // so contact happens at centre distance 1.207 ⇔ offset 0.853 per axis.
  Obb a{{0, 0}, 0.0, 0.5, 0.5};
  Obb b{{0.9, 0.9}, M_PI / 4, 0.5, 0.5};
  EXPECT_FALSE(obb_overlap(a, b));  // 0.9·√2 ≈ 1.273 > 1.207
  Obb c{{0.8, 0.8}, M_PI / 4, 0.5, 0.5};
  EXPECT_TRUE(obb_overlap(a, c));   // 0.8·√2 ≈ 1.131 < 1.207
}

TEST(Geometry, ObbOverlapNeedsAllFourAxes) {
  // Classic SAT case: the x/y projections overlap; only the rotated box's
  // own diagonal axis separates them.
  Obb a{{0, 0}, 0.0, 1.0, 1.0};
  Obb b{{1.6, 1.6}, M_PI / 4, 0.5, 0.5};
  EXPECT_FALSE(obb_overlap(a, b));
  // Slide it in along the diagonal: genuine overlap.
  Obb c{{1.3, 1.3}, M_PI / 4, 0.5, 0.5};
  EXPECT_TRUE(obb_overlap(a, c));
}

TEST(Geometry, RayObbHitsFront) {
  Obb box{{5, 0}, 0.0, 1.0, 1.0};
  auto t = ray_obb({0, 0}, {1, 0}, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.0, 1e-12);
}

TEST(Geometry, RayObbMisses) {
  Obb box{{5, 3}, 0.0, 1.0, 1.0};
  EXPECT_FALSE(ray_obb({0, 0}, {1, 0}, box).has_value());
}

TEST(Geometry, RayObbFromInsideIsZero) {
  Obb box{{0, 0}, 0.0, 1.0, 1.0};
  auto t = ray_obb({0.2, 0.1}, {1, 0}, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.0, 1e-12);
}

TEST(Geometry, RayObbRotatedBox) {
  // 45°-rotated square centred at (3, 0): the ray along +x hits the near
  // corner at 3 − √2·half.
  Obb box{{3, 0}, M_PI / 4, 0.5, 0.5};
  auto t = ray_obb({0, 0}, {1, 0}, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 3.0 - std::sqrt(2.0) * 0.5, 1e-9);
}

TEST(Geometry, RayObbBehindMisses) {
  Obb box{{-5, 0}, 0.0, 1.0, 1.0};
  EXPECT_FALSE(ray_obb({0, 0}, {1, 0}, box).has_value());
}

TEST(Geometry, RayCircle) {
  auto t = ray_circle({0, 0}, {1, 0}, {5, 0}, 1.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.0, 1e-12);
  EXPECT_FALSE(ray_circle({0, 0}, {1, 0}, {5, 2}, 1.0).has_value());
  EXPECT_FALSE(ray_circle({0, 0}, {-1, 0}, {5, 0}, 1.0).has_value());
  EXPECT_NEAR(*ray_circle({5, 0.5}, {1, 0}, {5, 0}, 1.0), 0.0, 1e-12);
}

// --------------------------------------------------------------- track ----

TEST(Track, LaneCenters) {
  Track t({8.0, 0.35, 2});
  EXPECT_DOUBLE_EQ(t.lane_center(0), 0.0);
  EXPECT_DOUBLE_EQ(t.lane_center(1), 0.35);
  EXPECT_THROW(t.lane_center(2), std::logic_error);
}

TEST(Track, LaneOfBoundaries) {
  Track t({8.0, 0.35, 2});
  EXPECT_EQ(t.lane_of(0.0), 0);
  EXPECT_EQ(t.lane_of(0.17), 0);
  EXPECT_EQ(t.lane_of(0.18), 1);
  EXPECT_EQ(t.lane_of(0.35), 1);
  EXPECT_EQ(t.lane_of(-0.5), 0);   // clamped
  EXPECT_EQ(t.lane_of(5.0), 1);    // clamped
}

TEST(Track, OnRoad) {
  Track t({8.0, 0.35, 2});
  EXPECT_TRUE(t.on_road(0.0));
  EXPECT_TRUE(t.on_road(0.52));
  EXPECT_FALSE(t.on_road(0.53));
  EXPECT_TRUE(t.on_road(-0.17));
  EXPECT_FALSE(t.on_road(-0.18));
}

TEST(Track, WrapX) {
  Track t({8.0, 0.35, 2});
  EXPECT_DOUBLE_EQ(t.wrap_x(8.5), 0.5);
  EXPECT_DOUBLE_EQ(t.wrap_x(-0.5), 7.5);
  EXPECT_DOUBLE_EQ(t.wrap_x(16.0), 0.0);
}

TEST(Track, SignedDxShortestPath) {
  Track t({8.0, 0.35, 2});
  EXPECT_DOUBLE_EQ(t.signed_dx(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(t.signed_dx(7.5, 0.5), 1.0);    // across the wrap
  EXPECT_DOUBLE_EQ(t.signed_dx(0.5, 7.5), -1.0);
  EXPECT_DOUBLE_EQ(t.signed_dx(0.0, 4.0), 4.0);    // exactly halfway → +C/2
}

TEST(Track, ForwardGap) {
  Track t({8.0, 0.35, 2});
  EXPECT_DOUBLE_EQ(t.forward_gap(1.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(t.forward_gap(7.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.forward_gap(3.0, 1.0), 6.0);  // all the way round
}

// -------------------------------------------------------------- vehicle ---

TEST(Vehicle, StraightLineIntegration) {
  Track track({8.0, 0.35, 2});
  Vehicle v(VehicleParams{}, VehicleState{0.0, 0.0, 0.0, 0.0, 0.0});
  v.step({0.1, 0.0}, 0.5, track);
  EXPECT_NEAR(v.state().x, 0.05, 1e-12);
  EXPECT_NEAR(v.state().y, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(v.state().speed, 0.1);
}

TEST(Vehicle, TurningChangesHeadingAndY) {
  Track track({8.0, 0.35, 2});
  Vehicle v(VehicleParams{}, VehicleState{});
  v.step({0.1, 0.2}, 0.5, track);
  EXPECT_NEAR(v.state().heading, 0.1, 1e-12);
  EXPECT_GT(v.state().y, 0.0);  // mid-point integration moves y immediately
}

TEST(Vehicle, ActuatorClamps) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  Vehicle v(p, VehicleState{});
  v.step({99.0, 99.0}, 0.5, track);
  EXPECT_DOUBLE_EQ(v.state().speed, p.max_speed);
  EXPECT_DOUBLE_EQ(v.state().yaw_rate, p.max_yaw_rate);
}

TEST(Vehicle, HeadingClamp) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  Vehicle v(p, VehicleState{});
  for (int i = 0; i < 100; ++i) v.step({0.1, p.max_yaw_rate}, 0.5, track);
  EXPECT_LE(v.state().heading, p.max_heading + 1e-12);
}

TEST(Vehicle, WrapsAroundTrack) {
  Track track({8.0, 0.35, 2});
  Vehicle v(VehicleParams{}, VehicleState{7.95, 0.0, 0.0, 0.0, 0.0});
  v.step({0.2, 0.0}, 0.5, track);
  EXPECT_LT(v.state().x, 0.1);
}

TEST(Vehicle, FootprintMatchesPose) {
  Vehicle v(VehicleParams{}, VehicleState{1.0, 0.2, 0.3, 0.0, 0.0});
  Obb f = v.footprint();
  EXPECT_DOUBLE_EQ(f.center.x, 1.0);
  EXPECT_DOUBLE_EQ(f.center.y, 0.2);
  EXPECT_DOUBLE_EQ(f.heading, 0.3);
  EXPECT_DOUBLE_EQ(f.half_len, 0.15);
  EXPECT_DOUBLE_EQ(f.half_wid, 0.09);
}

// ---------------------------------------------------------------- lidar ---

std::vector<Vehicle> two_vehicles(double gap, int lane2, const Track& track) {
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.0, 0.0, 0.1, 0.0});
  vs.emplace_back(p, VehicleState{track.wrap_x(1.0 + gap),
                                  lane2 * track.lane_width(), 0.0, 0.1, 0.0});
  return vs;
}

TEST(Lidar, FrontBeamSeesLeader) {
  Track track({8.0, 0.35, 2});
  auto vs = two_vehicles(1.0, 0, track);
  LidarSensor lidar({16, 2.0, 0.0});
  auto scan = lidar.scan(vs[0], vs, 0, track);
  ASSERT_EQ(scan.size(), 16u);
  // Beam 0 hits the leader's rear face: 1.0 − half_len = 0.85, /2.0 = 0.425.
  EXPECT_NEAR(scan[0], 0.425, 1e-9);
}

TEST(Lidar, RearBeamSeesFollowerAcrossWrap) {
  Track track({8.0, 0.35, 2});
  // Ego at x = 0.2; other at x = 7.6 — behind, across the wrap.
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{0.2, 0.0, 0.0, 0.1, 0.0});
  vs.emplace_back(p, VehicleState{7.6, 0.0, 0.0, 0.1, 0.0});
  LidarSensor lidar({16, 2.0, 0.0});
  auto scan = lidar.scan(vs[0], vs, 0, track);
  // Beam 8 points backwards; raw gap 0.6 − 0.15 = 0.45, /2.0 = 0.225.
  EXPECT_NEAR(scan[8], 0.225, 1e-9);
  EXPECT_NEAR(scan[0], 1.0, 1e-9);  // nothing ahead within range
}

TEST(Lidar, OutOfRangeIsOne) {
  Track track({8.0, 0.35, 2});
  auto vs = two_vehicles(3.5, 0, track);
  LidarSensor lidar({16, 2.0, 0.0});
  auto scan = lidar.scan(vs[0], vs, 0, track);
  for (double r : scan) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Lidar, SideBeamSeesAdjacentLane) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.0, 0.0, 0.1, 0.0});
  vs.emplace_back(p, VehicleState{1.0, 0.35, 0.0, 0.1, 0.0});  // directly left
  LidarSensor lidar({16, 2.0, 0.0});
  auto scan = lidar.scan(vs[0], vs, 0, track);
  // Beam 4 (90°) hits the neighbour's near side: 0.35 − 0.09 = 0.26, /2 = 0.13.
  EXPECT_NEAR(scan[4], 0.13, 1e-9);
}

TEST(Lidar, NoiseIsBoundedAndSeeded) {
  Track track({8.0, 0.35, 2});
  auto vs = two_vehicles(1.0, 0, track);
  LidarSensor lidar({16, 2.0, 0.05});
  Rng r1(5), r2(5);
  auto s1 = lidar.scan(vs[0], vs, 0, track, &r1);
  auto s2 = lidar.scan(vs[0], vs, 0, track, &r2);
  EXPECT_EQ(s1, s2);  // same seed, same noise
  for (double v : s1) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_NE(s1[0], 0.425);  // noise actually applied
}

// --------------------------------------------------------------- camera ---

TEST(LaneCamera, CenteredVehicleHasZeroOffset) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.0, 0.0, 0.1, 0.0});
  LaneCamera cam;
  auto f = cam.features(vs[0], vs, 0, track, /*reference_lane=*/0);
  ASSERT_EQ(f.size(), kLaneCameraDim);
  EXPECT_NEAR(f[0], 0.0, 1e-12);   // lateral offset
  EXPECT_NEAR(f[1], 0.0, 1e-12);   // sin(heading)
  EXPECT_NEAR(f[2], 1.0, 1e-12);   // cos(heading)
  EXPECT_NEAR(f[3], 1.0, 1e-12);   // no leader
  EXPECT_NEAR(f[5], 1.0, 1e-12);   // other lane is one width away
}

TEST(LaneCamera, OffsetRelativeToReferenceLane) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.1, 0.0, 0.1, 0.0});
  LaneCamera cam;
  auto f0 = cam.features(vs[0], vs, 0, track, 0);
  auto f1 = cam.features(vs[0], vs, 0, track, 1);
  EXPECT_NEAR(f0[0], 0.1 / 0.35, 1e-12);
  EXPECT_NEAR(f1[0], (0.1 - 0.35) / 0.35, 1e-12);
  // The "remaining manoeuvre" feature flips sign with the reference lane.
  EXPECT_NEAR(f0[5], 1.0, 1e-12);
  EXPECT_NEAR(f1[5], -1.0, 1e-12);
}

TEST(LaneCamera, DetectsLeaderGapAndRelativeSpeed) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.0, 0.0, 0.10, 0.0});
  vs.emplace_back(p, VehicleState{1.8, 0.0, 0.0, 0.04, 0.0});
  LaneCamera cam({2.0, 0.0});
  auto f = cam.features(vs[0], vs, 0, track, 0);
  EXPECT_NEAR(f[3], 0.8 / 2.0, 1e-12);
  EXPECT_NEAR(f[4], (0.04 - 0.10) / p.max_speed, 1e-12);
}

TEST(LaneCamera, IgnoresOtherLaneVehicles) {
  Track track({8.0, 0.35, 2});
  VehicleParams p;
  std::vector<Vehicle> vs;
  vs.emplace_back(p, VehicleState{1.0, 0.0, 0.0, 0.10, 0.0});
  vs.emplace_back(p, VehicleState{1.5, 0.35, 0.0, 0.04, 0.0});  // other lane
  LaneCamera cam;
  auto f = cam.features(vs[0], vs, 0, track, 0);
  EXPECT_NEAR(f[3], 1.0, 1e-12);
}

// --- BatchLaneWorld vs LaneWorld equivalence (docs/BATCHING.md) -----------
//
// The batched world's contract is *bitwise* equality with the serial world
// given the same config, state, and RNG stream — every EXPECT_EQ below is an
// exact double comparison on purpose.

LaneWorldConfig batch_test_config(int learners, bool with_plodder) {
  LaneWorldConfig cfg;
  cfg.track = {8.0, 0.35, 2};
  cfg.dt = 0.5;
  cfg.max_steps = 12;
  for (int i = 0; i < learners; ++i) {
    VehicleSpec s;
    s.start_lane = i % 2;
    s.start_x = 1.3 * i;
    s.start_x_jitter = 0.4;
    s.start_speed = 0.1;
    cfg.specs.push_back(s);
  }
  if (with_plodder) {
    VehicleSpec s;
    s.start_lane = 0;
    s.start_x = 1.3 * learners + 1.0;
    s.scripted = true;
    s.scripted_speed = 0.04;
    cfg.specs.push_back(s);
  }
  return cfg;
}

// Steps a serial world and env `e` of a batched world in lockstep with
// bit-identical command and world RNG streams, comparing everything after
// every step (void so ASSERT_* can bail out).
void run_lockstep_compare(const LaneWorldConfig& cfg, BatchLaneWorld& bw, int e,
                          unsigned world_seed, unsigned cmd_seed) {
  LaneWorld sw(cfg);
  Rng serial_rng(world_seed), batch_rng(world_seed);
  Rng serial_cmd(cmd_seed), batch_cmd(cmd_seed);
  sw.reset(serial_rng);
  bw.reset_env(e, batch_rng);

  const int n = sw.num_learners();
  std::vector<TwistCmd> cmds(static_cast<std::size_t>(n));
  std::vector<TwistCmd> bcmds(static_cast<std::size_t>(bw.num_envs()) *
                              static_cast<std::size_t>(n));
  std::vector<std::uint8_t> active(static_cast<std::size_t>(bw.num_envs()), 0);
  active[static_cast<std::size_t>(e)] = 1;
  BatchStepResult bout;
  std::vector<double> bobs(bw.high_level_obs_dim());
  std::vector<double> bl(bw.low_level_obs_dim());
  Rng* rngs[64] = {};
  rngs[e] = &batch_rng;

  int steps = 0;
  while (!sw.done()) {
    for (int k = 0; k < n; ++k) {
      cmds[static_cast<std::size_t>(k)] = {serial_cmd.uniform(0.0, 0.2),
                                           serial_cmd.uniform(-0.5, 0.5)};
      bcmds[static_cast<std::size_t>(e * n + k)] = {batch_cmd.uniform(0.0, 0.2),
                                                    batch_cmd.uniform(-0.5, 0.5)};
    }
    auto sout = sw.step(cmds, serial_rng);
    bw.step_all(bcmds.data(), rngs, active.data(), bout);
    ++steps;

    ASSERT_EQ(sw.steps(), bw.steps(e));
    ASSERT_EQ(sw.done(), bw.done(e));
    ASSERT_EQ(sout.collision, bout.collision[static_cast<std::size_t>(e)] != 0);
    for (int i = 0; i < sw.num_vehicles(); ++i) {
      const VehicleState& a = sw.vehicle(i).state();
      const VehicleState b = bw.state(e, i);
      ASSERT_EQ(a.x, b.x) << "vehicle " << i << " step " << steps;
      ASSERT_EQ(a.y, b.y) << "vehicle " << i << " step " << steps;
      ASSERT_EQ(a.heading, b.heading) << "vehicle " << i << " step " << steps;
      ASSERT_EQ(a.speed, b.speed) << "vehicle " << i << " step " << steps;
      ASSERT_EQ(a.yaw_rate, b.yaw_rate) << "vehicle " << i << " step " << steps;
      ASSERT_EQ(sout.travel[static_cast<std::size_t>(i)],
                bout.travel[static_cast<std::size_t>(e * sw.num_vehicles() + i)]);
      ASSERT_EQ(sw.total_travel(i), bw.total_travel(e, i));
      ASSERT_EQ(sw.mean_speed(i), bw.mean_speed(e, i));
    }
    for (int k = 0; k < n; ++k) {
      ASSERT_EQ(sout.reward[static_cast<std::size_t>(k)],
                bout.reward[static_cast<std::size_t>(e * n + k)]);
    }
    // Observations from the same post-step state must match bitwise too.
    for (int i = 0; i < sw.num_vehicles(); ++i) {
      auto sh = sw.high_level_obs(i);
      bw.high_level_obs_into(e, i, bobs.data());
      for (std::size_t d = 0; d < sh.size(); ++d) ASSERT_EQ(sh[d], bobs[d]);
      for (int ref = 0; ref < sw.track().num_lanes(); ++ref) {
        auto sl = sw.low_level_obs(i, ref);
        bw.low_level_obs_into(e, i, ref, bl.data());
        for (std::size_t d = 0; d < sl.size(); ++d) ASSERT_EQ(sl[d], bl[d]);
      }
    }
  }
  EXPECT_GT(steps, 0);
  EXPECT_TRUE(bw.done(e));
  EXPECT_EQ(sw.had_collision(), bw.had_collision(e));
}

TEST(BatchLaneWorld, SingleEnvMatchesSerialBitwise) {
  const auto cfg = batch_test_config(3, true);
  BatchLaneWorld bw(cfg, 1);
  for (unsigned seed = 0; seed < 8; ++seed) {
    run_lockstep_compare(cfg, bw, 0, 100 + seed, 900 + seed);
  }
}

TEST(BatchLaneWorld, SingleEnvMatchesSerialUnderRealWorldShift) {
  // Latency rings, actuation noise draws, and per-episode dynamics jitter
  // all consume RNG in the serial order.
  const auto cfg = with_real_world_shift(batch_test_config(3, true));
  BatchLaneWorld bw(cfg, 1);
  for (unsigned seed = 0; seed < 8; ++seed) {
    run_lockstep_compare(cfg, bw, 0, 200 + seed, 800 + seed);
  }
}

TEST(BatchLaneWorld, SixteenEnvsMatchSixteenSerialRuns) {
  // Every env of a 16-wide batch must reproduce its serial twin bitwise when
  // both consume the same counter-based stream — env order in the batch must
  // not leak between lanes.
  const auto cfg = with_real_world_shift(batch_test_config(2, true));
  BatchLaneWorld bw(cfg, 16);
  for (int e = 0; e < 16; ++e) {
    run_lockstep_compare(cfg, bw, e, 3000 + static_cast<unsigned>(e),
                         4000 + static_cast<unsigned>(e));
  }
}

TEST(BatchLaneWorld, BroadPhaseCollisionSetMatchesAllPairs) {
  // Randomized scenes: scatter vehicles (sometimes clustered, sometimes
  // off-road) and check the sorted-sweep collision set equals the serial
  // all-pairs OBB result exactly.
  auto cfg = batch_test_config(6, false);
  for (auto& sp : cfg.specs) sp.start_x_jitter = 0.0;  // keep streams trivial
  // The serial reference must stay genuine all-pairs OBB ground truth — with
  // the flag on it would use the same sorted sweep as the batch world and the
  // comparison would be sweep-vs-sweep.
  auto serial_cfg = cfg;
  serial_cfg.use_spatial_index = false;
  LaneWorld sw(serial_cfg);
  BatchLaneWorld bw(cfg, 1);
  Rng scene(42);
  const int n = sw.num_learners();
  std::vector<TwistCmd> cmds(static_cast<std::size_t>(n));
  std::vector<TwistCmd> bcmds(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> active{1};
  BatchStepResult bout;
  int collisions_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Rng r1(7), r2(7);
    sw.reset(r1);
    bw.reset_env(0, r2);
    for (int i = 0; i < sw.num_vehicles(); ++i) {
      VehicleState st;
      // Cluster positions so overlaps actually happen; occasionally push a
      // vehicle off-road to exercise the off-road branch.
      st.x = scene.uniform(0.0, trial % 3 == 0 ? 1.5 : 8.0);
      st.y = scene.uniform(-0.4, 0.75);
      st.heading = scene.uniform(-0.8, 0.8);
      st.speed = scene.uniform(0.0, 0.2);
      sw.mutable_vehicle(i).mutable_state() = st;
      bw.set_state(0, i, st);
    }
    for (int k = 0; k < n; ++k) {
      const TwistCmd c{scene.uniform(0.0, 0.2), scene.uniform(-0.5, 0.5)};
      cmds[static_cast<std::size_t>(k)] = c;
      bcmds[static_cast<std::size_t>(k)] = c;
    }
    Rng w1(9), w2(9);
    Rng* rngs[1] = {&w2};
    auto sout = sw.step(cmds, w1);
    bw.step_all(bcmds.data(), rngs, active.data(), bout);
    if (sout.collision) ++collisions_seen;
    ASSERT_EQ(sout.collision, bout.collision[0] != 0) << "trial " << trial;
    std::vector<int> bhit;
    for (int i = 0; i < sw.num_vehicles(); ++i) {
      if (bw.hit(0, i)) bhit.push_back(i);
    }
    ASSERT_EQ(sout.collided, bhit) << "trial " << trial;
  }
  // The scene generator must actually produce both outcomes.
  EXPECT_GT(collisions_seen, 10);
  EXPECT_LT(collisions_seen, 300);
}

}  // namespace
}  // namespace hero::sim
