// Unit tests for src/common: RNG, statistics, CSV/table output, CLI flags.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace hero {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(1.0, 2.0));
  EXPECT_NEAR(st.mean(), 1.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.randint(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalDegenerateFallsBackToUniform) {
  Rng rng(5);
  std::vector<double> w = {0.0, 0.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 1000; ++i) ++counts[rng.categorical(w)];
  EXPECT_GT(counts[0], 300);
  EXPECT_GT(counts[1], 300);
}

TEST(Rng, CategoricalRejectsNegativeWeights) {
  Rng rng(5);
  std::vector<double> w = {0.5, -0.1};
  EXPECT_THROW(rng.categorical(w), std::logic_error);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(42);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------- RunningStat ---

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat st;
  std::vector<double> xs = {1.0, 4.0, -2.0, 8.0, 3.0};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), 5u);
  EXPECT_DOUBLE_EQ(st.mean(), mean_of(xs));
  EXPECT_NEAR(st.stddev(), stddev_of(xs), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), -2.0);
  EXPECT_DOUBLE_EQ(st.max(), 8.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat st;
  st.add(5.0);
  st.reset();
  EXPECT_EQ(st.count(), 0u);
}

// -------------------------------------------------------- MovingAverage ---

TEST(MovingAverage, WindowedMean) {
  MovingAverage ma(3);
  EXPECT_DOUBLE_EQ(ma.add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.add(6.0), 4.5);
  EXPECT_DOUBLE_EQ(ma.add(9.0), 6.0);
  EXPECT_TRUE(ma.full());
  EXPECT_DOUBLE_EQ(ma.add(12.0), 9.0);  // 3.0 dropped
}

TEST(MovingAverage, ZeroWindowClampedToOne) {
  MovingAverage ma(0);
  EXPECT_DOUBLE_EQ(ma.add(5.0), 5.0);
  EXPECT_DOUBLE_EQ(ma.add(7.0), 7.0);
}

TEST(Downsample, BlockAverages) {
  std::vector<double> s = {1, 2, 3, 4, 5, 6};
  auto d = downsample(s, 3);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0].second, 1.5);
  EXPECT_DOUBLE_EQ(d[1].second, 3.5);
  EXPECT_DOUBLE_EQ(d[2].second, 5.5);
  EXPECT_EQ(d[2].first, 5u);
}

TEST(Downsample, FewerPointsThanRequested) {
  std::vector<double> s = {1, 2};
  auto d = downsample(s, 10);
  EXPECT_EQ(d.size(), 2u);
}

// ----------------------------------------------------------------- Csv ----

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "hero_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row(std::vector<double>{1.5, 2.0});
    csv.row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove(path);
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = std::filesystem::temp_directory_path() / "hero_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<double>{1.0}), std::logic_error);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- Table ----

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header row and separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::num(2.0, 1), "2.0");
}

// --------------------------------------------------------------- Flags ----

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--a", "3",  "--b=4.5", "--flag",
                        "--no-quiet", "pos1"};
  Flags f(7, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("a", 0), 3);
  EXPECT_DOUBLE_EQ(f.get_double("b", 0.0), 4.5);
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get_string("s", "d"), "d");
}

TEST(Flags, UnknownFlagDetected) {
  const char* argv[] = {"prog", "--oops", "1"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_THROW(f.check_unknown(), std::invalid_argument);
}

}  // namespace
}  // namespace hero
