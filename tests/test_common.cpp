// Unit tests for src/common: RNG, statistics, CSV/table output, CLI flags.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace hero {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(1.0, 2.0));
  EXPECT_NEAR(st.mean(), 1.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.randint(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalDegenerateFallsBackToUniform) {
  Rng rng(5);
  std::vector<double> w = {0.0, 0.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 1000; ++i) ++counts[rng.categorical(w)];
  EXPECT_GT(counts[0], 300);
  EXPECT_GT(counts[1], 300);
}

TEST(Rng, CategoricalRejectsNegativeWeights) {
  Rng rng(5);
  std::vector<double> w = {0.5, -0.1};
  EXPECT_THROW(rng.categorical(w), std::logic_error);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(42);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------- RunningStat ---

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat st;
  std::vector<double> xs = {1.0, 4.0, -2.0, 8.0, 3.0};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), 5u);
  EXPECT_DOUBLE_EQ(st.mean(), mean_of(xs));
  EXPECT_NEAR(st.stddev(), stddev_of(xs), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), -2.0);
  EXPECT_DOUBLE_EQ(st.max(), 8.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat st;
  st.add(5.0);
  st.reset();
  EXPECT_EQ(st.count(), 0u);
}

TEST(RunningStat, MergeMatchesSingleStream) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(2.0, 5.0));

  RunningStat whole;
  for (double x : xs) whole.add(x);

  // Split at an uneven boundary and merge the partial accumulators.
  RunningStat a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 137 ? a : b).add(xs[i]);
  a.merge(b);

  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptyStreams) {
  RunningStat filled, empty;
  filled.add(1.0);
  filled.add(3.0);

  RunningStat lhs = filled;
  lhs.merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);

  RunningStat rhs;
  rhs.merge(filled);  // adopt other stream wholesale
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 3.0);
}

TEST(RunningStat, MergeOfManyShardsMatchesSequential) {
  Rng rng(11);
  RunningStat whole;
  std::vector<RunningStat> shards(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    whole.add(x);
    shards[static_cast<std::size_t>(i % 7)].add(x);
  }
  RunningStat merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9);
}

// -------------------------------------------------------- MovingAverage ---

TEST(MovingAverage, WindowedMean) {
  MovingAverage ma(3);
  EXPECT_DOUBLE_EQ(ma.add(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.add(6.0), 4.5);
  EXPECT_DOUBLE_EQ(ma.add(9.0), 6.0);
  EXPECT_TRUE(ma.full());
  EXPECT_DOUBLE_EQ(ma.add(12.0), 9.0);  // 3.0 dropped
}

TEST(MovingAverage, ZeroWindowClampedToOne) {
  MovingAverage ma(0);
  EXPECT_DOUBLE_EQ(ma.add(5.0), 5.0);
  EXPECT_DOUBLE_EQ(ma.add(7.0), 7.0);
}

TEST(Downsample, BlockAverages) {
  std::vector<double> s = {1, 2, 3, 4, 5, 6};
  auto d = downsample(s, 3);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0].second, 1.5);
  EXPECT_DOUBLE_EQ(d[1].second, 3.5);
  EXPECT_DOUBLE_EQ(d[2].second, 5.5);
  EXPECT_EQ(d[2].first, 5u);
}

TEST(Downsample, FewerPointsThanRequested) {
  std::vector<double> s = {1, 2};
  auto d = downsample(s, 10);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Downsample, EmitsExactlyRequestedBlocks) {
  // 10 samples into 4 blocks: boundaries at 0,2,5,7,10 — never more or
  // fewer than `points` entries, even when size % points != 0.
  std::vector<double> s = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto d = downsample(s, 4);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0].second, 0.5);        // mean of {0,1}
  EXPECT_DOUBLE_EQ(d[1].second, 3.0);        // mean of {2,3,4}
  EXPECT_DOUBLE_EQ(d[2].second, 5.5);        // mean of {5,6}
  EXPECT_DOUBLE_EQ(d[3].second, 8.0);        // mean of {7,8,9}
  EXPECT_EQ(d[3].first, 9u);                 // index of each block's last sample
}

TEST(Downsample, VariedSizesAlwaysMatchRequest) {
  for (std::size_t size : {1u, 2u, 7u, 100u, 101u, 1000u}) {
    std::vector<double> s(size, 1.0);
    for (std::size_t points : {1u, 2u, 3u, 10u, 64u}) {
      auto d = downsample(s, points);
      EXPECT_EQ(d.size(), std::min(points, size)) << "size=" << size
                                                  << " points=" << points;
      EXPECT_EQ(d.back().first, size - 1);
    }
  }
}

TEST(Downsample, SinglePointIsWholeMean) {
  std::vector<double> s = {2, 4, 6, 8};
  auto d = downsample(s, 1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0].second, 5.0);
  EXPECT_EQ(d[0].first, 3u);
}

TEST(Downsample, EmptySeries) {
  EXPECT_TRUE(downsample({}, 5).empty());
  EXPECT_TRUE(downsample({1.0}, 0).empty());
}

// ------------------------------------------------------------- Logging ----

TEST(Logging, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

// ----------------------------------------------------------------- Csv ----

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "hero_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row(std::vector<double>{1.5, 2.0});
    csv.row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(f, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove(path);
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = std::filesystem::temp_directory_path() / "hero_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<double>{1.0}), std::logic_error);
  std::filesystem::remove(path);
}

// --------------------------------------------------------------- Table ----

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header row and separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::num(2.0, 1), "2.0");
}

// --------------------------------------------------------------- Flags ----

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--a", "3",  "--b=4.5", "--flag",
                        "--no-quiet", "pos1"};
  Flags f(7, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("a", 0), 3);
  EXPECT_DOUBLE_EQ(f.get_double("b", 0.0), 4.5);
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get_string("s", "d"), "d");
}

TEST(Flags, UnknownFlagDetected) {
  const char* argv[] = {"prog", "--oops", "1"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_THROW(f.check_unknown(), std::invalid_argument);
}

}  // namespace
}  // namespace hero
