// Gradient and behaviour tests for the policy parameterizations — the
// squashed-Gaussian backward pass is the most delicate code in the library,
// so it gets a full finite-difference verification with frozen noise.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/grad_check.h"
#include "nn/policy_heads.h"

namespace hero::nn {
namespace {

// ------------------------------------------------------ Categorical -------

TEST(CategoricalPolicy, ProbsFormDistribution) {
  Rng rng(1);
  CategoricalPolicy pi(3, {8}, 4, rng);
  auto p = pi.probs1({0.1, 0.2, 0.3});
  double s = 0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(CategoricalPolicy, GreedyPicksArgmax) {
  Rng rng(2);
  CategoricalPolicy pi(3, {8}, 4, rng);
  auto p = pi.probs1({0.5, -0.5, 0.2});
  const std::size_t greedy = pi.act({0.5, -0.5, 0.2}, rng, /*greedy=*/true);
  const auto argmax = std::max_element(p.begin(), p.end()) - p.begin();
  EXPECT_EQ(greedy, static_cast<std::size_t>(argmax));
}

TEST(CategoricalPolicy, SamplingCoversSupport) {
  Rng rng(3);
  CategoricalPolicy pi(2, {8}, 3, rng);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 2000; ++i) ++counts[pi.act({0.0, 0.0}, rng)];
  for (int c : counts) EXPECT_GT(c, 50);  // fresh nets are near-uniform
}

// ------------------------------------------------- SquashedGaussian -------

TEST(SquashedGaussian, ActionsWithinBounds) {
  Rng rng(4);
  SquashedGaussianPolicy pi(3, {8}, {0.04, -0.1}, {0.2, 0.1}, rng);
  for (int i = 0; i < 200; ++i) {
    auto a = pi.act1({rng.normal(), rng.normal(), rng.normal()}, rng);
    EXPECT_GE(a[0], 0.04);
    EXPECT_LE(a[0], 0.2);
    EXPECT_GE(a[1], -0.1);
    EXPECT_LE(a[1], 0.1);
  }
}

TEST(SquashedGaussian, DeterministicModeIsRepeatable) {
  Rng rng(5);
  SquashedGaussianPolicy pi(2, {8}, {0.0}, {1.0}, rng);
  auto a1 = pi.act1({0.3, 0.4}, rng, /*deterministic=*/true);
  auto a2 = pi.act1({0.3, 0.4}, rng, /*deterministic=*/true);
  EXPECT_DOUBLE_EQ(a1[0], a2[0]);
}

TEST(SquashedGaussian, LogProbMatchesNumericalDensity) {
  // For a 1-D policy, estimate P(a ∈ [a0−δ, a0+δ]) by Monte Carlo and
  // compare with exp(logp)·2δ.
  Rng rng(6);
  SquashedGaussianPolicy pi(1, {8}, {-1.0}, {1.0}, rng);
  const std::vector<double> obs = {0.5};
  Rng srng(7);
  auto s = pi.sample(Matrix::row(obs), srng);
  const double a0 = s.actions(0, 0);
  const double logp = s.log_prob[0];

  const double delta = 0.01;
  int hits = 0;
  const int trials = 200000;
  Rng mc(8);
  for (int i = 0; i < trials; ++i) {
    auto a = pi.act1(obs, mc);
    if (std::abs(a[0] - a0) < delta) ++hits;
  }
  const double empirical = static_cast<double>(hits) / trials / (2 * delta);
  EXPECT_NEAR(std::exp(logp), empirical, 0.15 * std::max(1.0, std::exp(logp)));
}

TEST(SquashedGaussian, BackwardFiniteDifference) {
  // Loss = Σ_i (w·a_i) + c·logp_i with frozen noise; check every trunk
  // parameter gradient by central differences (re-seeding reproduces eps).
  Rng rng(9);
  SquashedGaussianPolicy pi(3, {6}, {-0.5, 0.0}, {0.5, 2.0}, rng);
  Matrix obs = Matrix::xavier(4, 3, rng);
  const double wa0 = 0.7, wa1 = -0.3, c = 0.2;

  auto loss_with_seed = [&](unsigned seed) {
    Rng r(seed);
    auto s = pi.sample(obs, r);
    double loss = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      loss += wa0 * s.actions(i, 0) + wa1 * s.actions(i, 1) + c * s.log_prob[i];
    }
    return loss;
  };

  const unsigned kSeed = 123;
  Rng r(kSeed);
  auto s = pi.sample(obs, r);
  Matrix dL_da(4, 2);
  std::vector<double> dL_dlogp(4, c);
  for (std::size_t i = 0; i < 4; ++i) {
    dL_da(i, 0) = wa0;
    dL_da(i, 1) = wa1;
  }
  pi.net().zero_grad();
  pi.backward(s, dL_da, dL_dlogp);

  const double err = max_param_grad_error(
      pi.net(), [&]() { return loss_with_seed(kSeed); }, 1e-5);
  EXPECT_LT(err, 2e-4);
}

// --------------------------------------------- DeterministicTanh ----------

TEST(DeterministicTanh, ActionsWithinBounds) {
  Rng rng(10);
  DeterministicTanhPolicy pi(3, {8}, {0.04, -0.25}, {0.2, 0.25}, rng);
  for (int i = 0; i < 100; ++i) {
    auto a = pi.act1({rng.normal(), rng.normal(), rng.normal()});
    EXPECT_GE(a[0], 0.04);
    EXPECT_LE(a[0], 0.2);
    EXPECT_GE(a[1], -0.25);
    EXPECT_LE(a[1], 0.25);
  }
}

TEST(DeterministicTanh, BackwardFiniteDifference) {
  Rng rng(11);
  DeterministicTanhPolicy pi(2, {6}, {-1.0, 0.0}, {1.0, 4.0}, rng);
  Matrix obs = Matrix::xavier(3, 2, rng);

  auto loss_fn = [&]() {
    Matrix a = pi.forward(obs);
    double loss = 0.0;
    for (std::size_t i = 0; i < 3; ++i) loss += 0.5 * a(i, 0) - 0.25 * a(i, 1);
    return loss;
  };

  pi.net().zero_grad();
  (void)pi.forward(obs);
  Matrix dL_da(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    dL_da(i, 0) = 0.5;
    dL_da(i, 1) = -0.25;
  }
  pi.backward(dL_da);
  EXPECT_LT(max_param_grad_error(pi.net(), loss_fn), 1e-5);
}

TEST(DeterministicTanh, CenterAtZeroTrunkOutput) {
  // tanh(0) = 0 ⇒ action = centre of the range. Verify mapping constants by
  // zeroing the final layer.
  Rng rng(12);
  DeterministicTanhPolicy pi(2, {4}, {0.0, -2.0}, {1.0, 2.0}, rng);
  for (auto p : pi.net().params()) p.value->fill(0.0);
  auto a = pi.act1({0.7, -0.7});
  EXPECT_NEAR(a[0], 0.5, 1e-12);
  EXPECT_NEAR(a[1], 0.0, 1e-12);
}

}  // namespace
}  // namespace hero::nn
