// Tests for the baseline learners. SAC and DDPG are environment-agnostic, so
// they are verified end-to-end on a 1-D point-control task; the multi-agent
// trainers are exercised on the lane-change scenario.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/coma.h"
#include "algos/ddpg.h"
#include "algos/dqn.h"
#include "algos/maac.h"
#include "algos/maddpg.h"
#include "algos/sac.h"

namespace hero::algos {
namespace {

// 1-D regulator: state x, action v ∈ [−1, 1], x' = x + 0.2·v,
// reward −|x'|. Optimal policy drives x to 0.
struct PointEnv {
  double x = 0.0;
  void reset(Rng& rng) { x = rng.uniform(-1.0, 1.0); }
  double step(double v) {
    x += 0.2 * v;
    return -std::abs(x);
  }
  std::vector<double> obs() const { return {x}; }
};

template <typename Agent>
double rollout_return(Agent& agent, Rng& rng, int episodes, bool explore) {
  PointEnv env;
  double total = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    env.reset(rng);
    for (int t = 0; t < 20; ++t) {
      std::vector<double> a;
      if constexpr (std::is_same_v<Agent, SacAgent>) {
        a = agent.act(env.obs(), rng, !explore);
      } else {
        a = agent.act(env.obs(), rng, explore);
      }
      total += env.step(a[0]);
    }
  }
  return total / episodes;
}

TEST(Sac, LearnsPointControl) {
  Rng rng(1);
  SacConfig cfg;
  cfg.batch = 64;
  cfg.warmup_steps = 200;
  cfg.hidden = {16, 16};
  SacAgent agent(1, {-1.0}, {1.0}, cfg, rng);

  const double before = rollout_return(agent, rng, 10, false);
  PointEnv env;
  for (int ep = 0; ep < 150; ++ep) {
    env.reset(rng);
    for (int t = 0; t < 20; ++t) {
      auto obs = env.obs();
      auto a = agent.act(obs, rng);
      double r = env.step(a[0]);
      agent.observe(obs, a, r, env.obs(), t == 19, rng);
    }
  }
  const double after = rollout_return(agent, rng, 10, false);
  EXPECT_GT(after, before + 1.0);
  EXPECT_GT(after, -4.0);  // near-optimal: |x0| decays within a few steps
}

TEST(Sac, UpdateStatsReported) {
  Rng rng(2);
  SacConfig cfg;
  cfg.batch = 16;
  cfg.warmup_steps = 16;
  SacAgent agent(1, {-1.0}, {1.0}, cfg, rng);
  PointEnv env;
  env.reset(rng);
  SacUpdateStats last;
  for (int t = 0; t < 64; ++t) {
    auto obs = env.obs();
    auto a = agent.act(obs, rng);
    double r = env.step(a[0]);
    last = agent.observe(obs, a, r, env.obs(), false, rng);
  }
  EXPECT_TRUE(last.updated);
  EXPECT_GT(last.entropy, -10.0);
  EXPECT_LT(last.entropy, 10.0);
  EXPECT_GE(last.critic_loss, 0.0);
}

TEST(Sac, NoUpdateBeforeWarmup) {
  Rng rng(3);
  SacConfig cfg;
  cfg.warmup_steps = 1000;
  SacAgent agent(1, {-1.0}, {1.0}, cfg, rng);
  auto stats = agent.observe({0.0}, {0.0}, 0.0, {0.0}, false, rng);
  EXPECT_FALSE(stats.updated);
}

TEST(Ddpg, LearnsPointControl) {
  Rng rng(4);
  DdpgConfig cfg;
  cfg.batch = 64;
  cfg.warmup_steps = 200;
  cfg.hidden = {16, 16};
  cfg.noise_stddev = 0.2;
  DdpgAgent agent(1, {-1.0}, {1.0}, cfg, rng);

  PointEnv env;
  for (int ep = 0; ep < 150; ++ep) {
    env.reset(rng);
    for (int t = 0; t < 20; ++t) {
      auto obs = env.obs();
      auto a = agent.act(obs, rng, /*explore=*/true);
      double r = env.step(a[0]);
      agent.observe(obs, a, r, env.obs(), t == 19, rng);
    }
  }
  const double after = rollout_return(agent, rng, 10, false);
  EXPECT_GT(after, -4.0);
}

// -------------------------------------------------- multi-agent smoke -----

sim::Scenario small_scenario() { return sim::cooperative_lane_change(); }

DqnConfig fast_dqn() {
  DqnConfig c;
  c.batch = 32;
  c.warmup_steps = 64;
  return c;
}

TEST(IndependentDqn, ActsOnGridAndTrains) {
  Rng rng(5);
  auto sc = small_scenario();
  IndependentDqnTrainer trainer(sc, fast_dqn(), rng);

  auto cmds = trainer.act(trainer.world(), rng, /*explore=*/false);
  ASSERT_EQ(cmds.size(), 3u);
  rl::ActionGrid grid = rl::ActionGrid::standard();
  for (const auto& c : cmds) {
    // Every command must be a grid point.
    auto rt = grid.decode(grid.encode(c));
    EXPECT_DOUBLE_EQ(rt.linear, c.linear);
    EXPECT_DOUBLE_EQ(rt.angular, c.angular);
  }

  int episodes_seen = 0;
  trainer.train(5, rng, [&](int, const rl::EpisodeStats& s) {
    ++episodes_seen;
    EXPECT_GT(s.steps, 0);
  });
  EXPECT_EQ(episodes_seen, 5);
  EXPECT_GT(trainer.total_steps(), 0);
}

TEST(Maddpg, ActionsWithinPrimitiveBounds) {
  Rng rng(6);
  MaddpgConfig cfg;
  cfg.batch = 32;
  cfg.warmup_steps = 64;
  MaddpgTrainer trainer(small_scenario(), cfg, rng);
  trainer.train(3, rng);
  auto cmds = trainer.act(trainer.world(), rng, true);
  for (const auto& c : cmds) {
    EXPECT_GE(c.linear, 0.04);
    EXPECT_LE(c.linear, 0.20);
    EXPECT_GE(c.angular, -0.25);
    EXPECT_LE(c.angular, 0.25);
  }
}

TEST(Coma, TrainsOnPolicy) {
  Rng rng(7);
  ComaConfig cfg;
  ComaTrainer trainer(small_scenario(), cfg, rng);
  int hooks = 0;
  trainer.train(4, rng, [&](int, const rl::EpisodeStats&) { ++hooks; });
  EXPECT_EQ(hooks, 4);
  auto cmds = trainer.act(trainer.world(), rng, false);
  EXPECT_EQ(cmds.size(), 3u);
}

TEST(Maac, TrainsAndActs) {
  Rng rng(8);
  MaacConfig cfg;
  cfg.batch = 16;
  cfg.warmup_steps = 32;
  cfg.embed_dim = 16;
  MaacTrainer trainer(small_scenario(), cfg, rng);
  trainer.train(3, rng);
  auto cmds = trainer.act(trainer.world(), rng, false);
  EXPECT_EQ(cmds.size(), 3u);
}

// The baselines' num_workers option parallelizes minibatch assembly and the
// independent per-agent updates; every RNG draw happens serially in agent
// order before the fan-out and workers write only index-addressed state, so
// the parallel path must reproduce the serial path bit for bit.
template <typename Trainer, typename Config>
std::vector<double> reward_trace(const Config& cfg, unsigned seed, int episodes) {
  Rng rng(seed);
  Trainer t(small_scenario(), cfg, rng);
  std::vector<double> rewards;
  t.train(episodes, rng, [&](int, const rl::EpisodeStats& s) {
    rewards.push_back(s.team_reward);
  });
  return rewards;
}

TEST(IndependentDqn, ParallelUpdatesMatchSerialBitwise) {
  DqnConfig serial = fast_dqn();
  DqnConfig parallel = serial;
  parallel.num_workers = 3;
  EXPECT_EQ((reward_trace<IndependentDqnTrainer>(serial, 42, 5)),
            (reward_trace<IndependentDqnTrainer>(parallel, 42, 5)));
}

TEST(IndependentDqn, BatchedCollectionIsReproducibleAndOrdered) {
  // The batch-first path is keyed to (seed, batch_envs): same pair → same
  // trace, and hooks fire in canonical episode order across rounds.
  DqnConfig cfg = fast_dqn();
  cfg.batch_envs = 3;
  EXPECT_EQ((reward_trace<IndependentDqnTrainer>(cfg, 42, 5)),
            (reward_trace<IndependentDqnTrainer>(cfg, 42, 5)));

  Rng rng(43);
  IndependentDqnTrainer t(small_scenario(), cfg, rng);
  std::vector<int> order;
  t.train(5, rng, [&](int ep, const rl::EpisodeStats& s) {
    order.push_back(ep);
    EXPECT_GT(s.steps, 0);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_GT(t.total_steps(), 0);
}

TEST(Maddpg, ParallelUpdatesMatchSerialBitwise) {
  MaddpgConfig serial;
  serial.batch = 32;
  serial.warmup_steps = 64;
  MaddpgConfig parallel = serial;
  parallel.num_workers = 3;
  EXPECT_EQ((reward_trace<MaddpgTrainer>(serial, 42, 4)),
            (reward_trace<MaddpgTrainer>(parallel, 42, 4)));
}

TEST(Coma, ParallelAssemblyMatchesSerialBitwise) {
  ComaConfig serial;
  ComaConfig parallel = serial;
  parallel.num_workers = 3;
  EXPECT_EQ((reward_trace<ComaTrainer>(serial, 42, 4)),
            (reward_trace<ComaTrainer>(parallel, 42, 4)));
}

TEST(Maac, ParallelAssemblyMatchesSerialBitwise) {
  MaacConfig serial;
  serial.batch = 16;
  serial.warmup_steps = 32;
  serial.embed_dim = 16;
  MaacConfig parallel = serial;
  parallel.num_workers = 3;
  EXPECT_EQ((reward_trace<MaacTrainer>(serial, 42, 3)),
            (reward_trace<MaacTrainer>(parallel, 42, 3)));
}

// Determinism: identical seeds must reproduce identical training traces.
TEST(IndependentDqn, DeterministicGivenSeed) {
  auto run = [](unsigned seed) {
    Rng rng(seed);
    IndependentDqnTrainer trainer(small_scenario(), fast_dqn(), rng);
    std::vector<double> rewards;
    trainer.train(5, rng, [&](int, const rl::EpisodeStats& s) {
      rewards.push_back(s.team_reward);
    });
    return rewards;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace hero::algos
