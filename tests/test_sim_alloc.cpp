// Verifies the zero-allocation contract of the sim sensing hot path: after a
// warmup pass establishes buffer capacity (scene mirrors, spatial index,
// staged boxes, lidar scratch), repeated *_obs_into calls — and the batch
// world's step_all — must not touch the heap, on both the indexed and the
// all-pairs reference paths. This is what retired the allocating
// LidarSensor::scan() from the serial hot path (docs/PERFORMANCE.md).
//
// Global operator new/delete are replaced with counting versions; this file
// is its own test binary so the replacement cannot leak into other suites
// (same idiom as test_nn_alloc.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "sim/batch_lane_world.h"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace hero::sim {
namespace {

long allocations_during(const std::function<void()>& fn) {
  const long before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

LaneWorldConfig alloc_test_config(int vehicles, bool use_index) {
  LaneWorldConfig cfg;
  cfg.track = {8.0, 0.35, 2};
  cfg.dt = 0.5;
  cfg.max_steps = 1000;  // keep episodes open for the whole measurement
  cfg.use_spatial_index = use_index;
  cfg.lidar.noise_stddev = 0.02;  // noise draws must be alloc-free too
  for (int i = 0; i < vehicles; ++i) {
    VehicleSpec s;
    s.start_lane = i % 2;
    s.start_x = 0.9 * i;
    s.start_speed = 0.1;
    s.scripted = i == vehicles - 1;
    cfg.specs.push_back(s);
  }
  return cfg;
}

void serial_obs_pass(const LaneWorld& world, std::vector<double>& hl,
                     std::vector<double>& ll, Rng& noise) {
  for (int i = 0; i < world.num_vehicles(); ++i) {
    world.high_level_obs_into(i, hl.data(), &noise);
    for (int lane = 0; lane < world.track().num_lanes(); ++lane) {
      world.low_level_obs_into(i, lane, ll.data(), &noise);
    }
  }
}

TEST(SimAllocationCount, SerialObsSteadyStateIsAllocFree) {
  for (const bool use_index : {true, false}) {
    LaneWorld world(alloc_test_config(8, use_index));
    Rng rng(1), noise(2);
    world.reset(rng);
    std::vector<double> hl(world.high_level_obs_dim());
    std::vector<double> ll(world.low_level_obs_dim());

    // Warmup: size the scene mirrors, index storage and lidar scratch.
    for (int i = 0; i < 2; ++i) serial_obs_pass(world, hl, ll, noise);

    const long n = allocations_during([&] {
      for (int iter = 0; iter < 10; ++iter) {
        // Perturb a vehicle so every iteration re-sorts the index — the
        // rebuild itself must be allocation-free, not just the cached reads.
        world.mutable_vehicle(iter % world.num_vehicles()).mutable_state().x =
            world.track().wrap_x(0.37 * static_cast<double>(iter));
        serial_obs_pass(world, hl, ll, noise);
      }
    });
    EXPECT_EQ(n, 0) << n << " heap allocations in 10 steady-state obs passes"
                    << " (use_spatial_index=" << use_index << ")";
  }
}

TEST(SimAllocationCount, BatchStepAndObsSteadyStateIsAllocFree) {
  const int kEnvs = 4;
  BatchLaneWorld world(alloc_test_config(6, true), kEnvs);
  const int n_learners = world.num_learners();
  std::vector<Rng> rngs;
  std::vector<Rng*> rng_ptrs;
  for (int e = 0; e < kEnvs; ++e) rngs.emplace_back(10 + static_cast<unsigned>(e));
  for (int e = 0; e < kEnvs; ++e) rng_ptrs.push_back(&rngs[static_cast<std::size_t>(e)]);
  for (int e = 0; e < kEnvs; ++e) world.reset_env(e, rngs[static_cast<std::size_t>(e)]);

  // Identical gentle commands: no collisions, episodes stay open.
  std::vector<TwistCmd> cmds(static_cast<std::size_t>(kEnvs * n_learners),
                             TwistCmd{0.05, 0.0});
  std::vector<std::uint8_t> active(static_cast<std::size_t>(kEnvs), 1);
  BatchStepResult bout;
  std::vector<double> hl(world.high_level_obs_dim());
  std::vector<double> ll(world.low_level_obs_dim());

  auto pass = [&] {
    world.step_all(cmds.data(), rng_ptrs.data(), active.data(), bout);
    for (int e = 0; e < kEnvs; ++e) {
      for (int i = 0; i < world.num_vehicles(); ++i) {
        world.high_level_obs_into(e, i, hl.data());
        world.low_level_obs_into(e, i, world.lane(e, i), ll.data());
      }
    }
  };
  for (int i = 0; i < 2; ++i) pass();  // warmup sizes bout and all scratch

  const long n = allocations_during([&] {
    for (int iter = 0; iter < 10; ++iter) pass();
  });
  EXPECT_EQ(n, 0) << n
                  << " heap allocations in 10 steady-state step+obs rounds";
}

}  // namespace
}  // namespace hero::sim
