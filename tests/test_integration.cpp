// Integration tests: the full HERO pipeline, cross-method evaluation through
// the shared harness, and sim-to-"real" transfer of trained controllers.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "algos/dqn.h"
#include "hero/hero_trainer.h"
#include "nn/serialize.h"
#include "rl/evaluation.h"
#include "sim/scenario.h"

namespace hero {
namespace {

core::HeroConfig fast_hero() {
  core::HeroConfig cfg;
  cfg.skill.sac.batch = 32;
  cfg.skill.sac.warmup_steps = 64;
  cfg.high.batch = 16;
  cfg.high.warmup_transitions = 16;
  cfg.opponent.min_samples = 32;
  return cfg;
}

TEST(HeroPipeline, StageOneProducesCurvesForLearnedSkills) {
  Rng rng(1);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  auto curves = trainer.train_skills(10, rng);
  EXPECT_EQ(curves.size(), 3u);  // keep-lane is not learned
  EXPECT_EQ(curves.count(core::Option::kKeepLane), 0u);
  for (const auto& [o, curve] : curves) {
    (void)o;
    EXPECT_EQ(curve.size(), 10u);
  }
}

TEST(HeroPipeline, StageTwoTrainsAndFillsBuffers) {
  Rng rng(2);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(20, rng);

  int hooks = 0;
  trainer.train(10, rng, [&](int, const rl::EpisodeStats& s) {
    ++hooks;
    EXPECT_GT(s.steps, 0);
    EXPECT_LE(s.steps, sc.config.max_steps);
  });
  EXPECT_EQ(hooks, 10);
  for (int k = 0; k < trainer.num_agents(); ++k) {
    EXPECT_GT(trainer.agent(k).high_level().buffered(), 0u);
  }
}

TEST(HeroPipeline, OpponentLossHistoryGrowsDuringTraining) {
  Rng rng(3);
  auto sc = sim::cooperative_lane_change();
  auto cfg = fast_hero();
  cfg.opponent.min_samples = 16;
  core::HeroTrainer trainer(sc, cfg, rng);
  trainer.train_skills(10, rng);
  trainer.train(15, rng);
  const auto& hist = trainer.agent(1).opponents().loss_history();
  ASSERT_EQ(hist.size(), 2u);  // two opponents from vehicle 2's perspective
  EXPECT_GT(hist[0].size(), 0u);
  EXPECT_GT(hist[1].size(), 0u);
}

TEST(HeroPipeline, ControllerProducesValidCommands) {
  Rng rng(4);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(10, rng);

  sim::LaneWorld world(sc.config);
  world.reset(rng);
  trainer.begin_episode(world);
  while (!world.done()) {
    auto cmds = trainer.act(world, rng, /*explore=*/false);
    ASSERT_EQ(cmds.size(), 3u);
    for (const auto& c : cmds) {
      EXPECT_GE(c.linear, 0.0);
      EXPECT_LE(c.linear, 0.25);           // actuator envelope
      EXPECT_LE(std::abs(c.angular), 0.6);
    }
    (void)world.step(cmds, rng);
  }
}

TEST(HeroPipeline, EvaluationDoesNotPolluteReplay) {
  Rng rng(5);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(10, rng);
  trainer.train(5, rng);
  const std::size_t buffered = trainer.agent(0).high_level().buffered();

  sim::LaneWorld world(sc.config);
  (void)rl::evaluate(world, trainer, rng, 5, sc.merger_index, sc.merger_target_lane);
  EXPECT_EQ(trainer.agent(0).high_level().buffered(), buffered);
}

TEST(HeroPipeline, RunsOnDomainShiftedWorld) {
  Rng rng(6);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(10, rng);

  sim::LaneWorld real_world(sim::with_real_world_shift(sc.config));
  auto summary = rl::evaluate(real_world, trainer, rng, 5, sc.merger_index,
                              sc.merger_target_lane);
  EXPECT_EQ(summary.episodes, 5);
  EXPECT_GE(summary.collision_rate, 0.0);
  EXPECT_LE(summary.collision_rate, 1.0);
}

TEST(HeroPipeline, AsynchronousTermination) {
  // Agents must hold options of different remaining lengths — after a few
  // steps their option ages must not all be equal (asynchronous mode).
  Rng rng(7);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(5, rng);

  sim::LaneWorld world(sc.config);
  bool saw_desync = false;
  for (int ep = 0; ep < 5 && !saw_desync; ++ep) {
    world.reset(rng);
    trainer.begin_episode(world);
    while (!world.done()) {
      auto cmds = trainer.act(world, rng, /*explore=*/true);
      (void)world.step(cmds, rng);
      const int s0 = trainer.agent(0).execution().steps;
      const int s1 = trainer.agent(1).execution().steps;
      const int s2 = trainer.agent(2).execution().steps;
      if (s0 != s1 || s1 != s2) saw_desync = true;
    }
  }
  EXPECT_TRUE(saw_desync);
}

TEST(HeroPipeline, DeterministicGivenSeed) {
  auto run = [](unsigned seed) {
    Rng rng(seed);
    auto sc = sim::cooperative_lane_change();
    core::HeroTrainer trainer(sc, fast_hero(), rng);
    trainer.train_skills(5, rng);
    std::vector<double> rewards;
    trainer.train(5, rng, [&](int, const rl::EpisodeStats& s) {
      rewards.push_back(s.team_reward);
    });
    return rewards;
  };
  EXPECT_EQ(run(11), run(11));
}

// Serialized learner parameters (actors, critics, opponent predictors) —
// bitwise fingerprint for the determinism tests below.
std::string learner_params(core::HeroTrainer& t) {
  std::ostringstream os;
  for (int k = 0; k < t.num_agents(); ++k) {
    auto& a = t.agent(k);
    nn::save_params(a.high_level().actor().net(), os);
    nn::save_params(a.high_level().critic(), os);
    for (int j = 0; j < a.opponents().num_opponents(); ++j) {
      nn::save_params(a.opponents().net(j), os);
    }
  }
  return os.str();
}

TEST(HeroParallel, SameSeedRunsAreBitwiseIdentical) {
  auto run = [](std::string* params) {
    Rng rng(17);
    auto sc = sim::cooperative_lane_change();
    auto cfg = fast_hero();
    cfg.num_workers = 2;
    core::HeroTrainer trainer(sc, cfg, rng);
    std::vector<double> rewards;
    trainer.train(6, rng, [&](int, const rl::EpisodeStats& s) {
      rewards.push_back(s.team_reward);
    });
    *params = learner_params(trainer);
    return rewards;
  };
  std::string p1, p2;
  const auto r1 = run(&p1);
  const auto r2 = run(&p2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(p1, p2);
}

TEST(HeroParallel, ResultsInvariantToWorkerCount) {
  // The determinism contract keys parallel results to (seed, num_envs) only:
  // episode e always draws RNG stream e and explores from the learner's
  // round-start ε position, so the worker count changes wall-clock, never
  // trajectories (docs/PARALLELISM.md).
  auto run = [](int workers, std::string* params) {
    Rng rng(23);
    auto sc = sim::cooperative_lane_change();
    auto cfg = fast_hero();
    cfg.num_workers = workers;
    cfg.num_envs = 4;
    core::HeroTrainer trainer(sc, cfg, rng);
    std::vector<double> rewards;
    trainer.train(6, rng, [&](int, const rl::EpisodeStats& s) {
      rewards.push_back(s.team_reward);
    });
    *params = learner_params(trainer);
    return rewards;
  };
  std::string p2, p4;
  const auto r2 = run(2, &p2);
  const auto r4 = run(4, &p4);
  EXPECT_EQ(r2, r4);
  EXPECT_EQ(p2, p4);
}

TEST(HeroParallel, HooksFireInCanonicalEpisodeOrder) {
  Rng rng(29);
  auto sc = sim::cooperative_lane_change();
  auto cfg = fast_hero();
  cfg.num_workers = 3;
  core::HeroTrainer trainer(sc, cfg, rng);
  std::vector<int> episodes;
  trainer.train(7, rng, [&](int ep, const rl::EpisodeStats& s) {
    episodes.push_back(ep);
    EXPECT_GT(s.steps, 0);
  });
  std::vector<int> want(7);
  for (int i = 0; i < 7; ++i) want[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(episodes, want);
  // The merged experience lands in the learner's buffers, not the replicas'.
  for (int k = 0; k < trainer.num_agents(); ++k) {
    EXPECT_GT(trainer.agent(k).high_level().buffered(), 0u);
  }
}

TEST(HeroBatched, SameSeedRunsAreBitwiseIdentical) {
  // The batch-first engine's determinism contract: results are a pure
  // function of (seed, batch_envs) — docs/BATCHING.md.
  auto run = [](std::string* params) {
    Rng rng(31);
    auto sc = sim::cooperative_lane_change();
    auto cfg = fast_hero();
    cfg.batch_envs = 3;
    core::HeroTrainer trainer(sc, cfg, rng);
    std::vector<double> rewards;
    trainer.train(6, rng, [&](int, const rl::EpisodeStats& s) {
      rewards.push_back(s.team_reward);
    });
    *params = learner_params(trainer);
    return rewards;
  };
  std::string p1, p2;
  const auto r1 = run(&p1);
  const auto r2 = run(&p2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(p1, p2);
}

TEST(HeroBatched, TrainsAndFillsBuffersAtWidthOne) {
  // batch_envs = 1 exercises every lane-retirement and merge edge with a
  // single live lane — the smallest deployment of the batched engine.
  Rng rng(37);
  auto sc = sim::cooperative_lane_change();
  auto cfg = fast_hero();
  cfg.batch_envs = 1;
  core::HeroTrainer trainer(sc, cfg, rng);
  int hooks = 0;
  trainer.train(5, rng, [&](int ep, const rl::EpisodeStats& s) {
    EXPECT_EQ(ep, hooks);
    ++hooks;
    EXPECT_GT(s.steps, 0);
    EXPECT_LE(s.steps, sc.config.max_steps);
  });
  EXPECT_EQ(hooks, 5);
  for (int k = 0; k < trainer.num_agents(); ++k) {
    EXPECT_GT(trainer.agent(k).high_level().buffered(), 0u);
    EXPECT_GT(trainer.agent(k).high_level().selections(), 0);
  }
}

TEST(HeroBatched, HooksFireInCanonicalEpisodeOrder) {
  // Lane order IS episode order, including the short tail round (7 episodes
  // over width-3 rounds: 3 + 3 + 1).
  Rng rng(41);
  auto sc = sim::cooperative_lane_change();
  auto cfg = fast_hero();
  cfg.batch_envs = 3;
  core::HeroTrainer trainer(sc, cfg, rng);
  std::vector<int> episodes;
  trainer.train(7, rng, [&](int ep, const rl::EpisodeStats& s) {
    episodes.push_back(ep);
    EXPECT_GT(s.steps, 0);
  });
  std::vector<int> want(7);
  for (int i = 0; i < 7; ++i) want[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(episodes, want);
  for (int k = 0; k < trainer.num_agents(); ++k) {
    EXPECT_GT(trainer.agent(k).high_level().buffered(), 0u);
    EXPECT_GT(trainer.agent(k).opponents().samples(0), 0u);
  }
}

TEST(HeroPipeline, CheckpointRoundTripReproducesBehaviour) {
  Rng rng(9);
  auto sc = sim::cooperative_lane_change();
  core::HeroTrainer trainer(sc, fast_hero(), rng);
  trainer.train_skills(15, rng);
  trainer.train(10, rng);

  const auto dir = std::filesystem::temp_directory_path() / "hero_ckpt_test";
  std::filesystem::create_directories(dir);
  trainer.save(dir.string());

  Rng rng2(99);
  core::HeroTrainer restored(sc, fast_hero(), rng2);
  restored.load(dir.string());

  // Identical greedy behaviour on an identical episode.
  sim::LaneWorld w1(sc.config), w2(sc.config);
  Rng e1(7), e2(7);
  w1.reset(e1);
  w2.reset(e2);
  trainer.begin_episode(w1);
  restored.begin_episode(w2);
  while (!w1.done() && !w2.done()) {
    auto c1 = trainer.act(w1, e1, false);
    auto c2 = restored.act(w2, e2, false);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t i = 0; i < c1.size(); ++i) {
      EXPECT_NEAR(c1[i].linear, c2[i].linear, 1e-12);
      EXPECT_NEAR(c1[i].angular, c2[i].angular, 1e-12);
    }
    (void)w1.step(c1, e1);
    (void)w2.step(c2, e2);
  }
  // Loaded opponent models must be trusted (not the uniform prior).
  EXPECT_TRUE(restored.agent(0).opponents().trained());
  std::filesystem::remove_all(dir);
}

TEST(CrossMethod, SharedHarnessScoresHeroAndDqnIdentically) {
  // Both controllers must run through the same evaluate() without special
  // cases — the property the Fig. 7/11 and Table II benches rely on.
  Rng rng(8);
  auto sc = sim::cooperative_lane_change();

  core::HeroTrainer hero(sc, fast_hero(), rng);
  hero.train_skills(5, rng);

  algos::DqnConfig dq;
  dq.batch = 16;
  dq.warmup_steps = 32;
  algos::IndependentDqnTrainer dqn(sc, dq, rng);

  sim::LaneWorld world(sc.config);
  auto s1 = rl::evaluate(world, hero, rng, 3, sc.merger_index, sc.merger_target_lane);
  auto s2 = rl::evaluate(world, dqn, rng, 3, sc.merger_index, sc.merger_target_lane);
  EXPECT_EQ(s1.episodes, 3);
  EXPECT_EQ(s2.episodes, 3);
}

}  // namespace
}  // namespace hero
