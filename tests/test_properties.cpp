// Parameterized property tests (TEST_P sweeps): invariants that must hold
// across whole families of inputs — kinematics, action bounds, environment
// step contracts, network shapes, probability outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/losses.h"
#include "nn/mlp.h"
#include "nn/policy_heads.h"
#include "rl/discretizer.h"
#include "rl/exploration.h"
#include "rl/replay_buffer.h"
#include "sim/scenario.h"

namespace hero {
namespace {

// ------------------------------------------------ vehicle kinematics ------

class VehicleKinematicsP
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(VehicleKinematicsP, StepInvariants) {
  const auto [speed, yaw, dt] = GetParam();
  sim::Track track({8.0, 0.35, 2});
  sim::VehicleParams params;
  sim::Vehicle v(params, sim::VehicleState{1.0, 0.0, 0.0, 0.0, 0.0});

  for (int i = 0; i < 40; ++i) {
    const sim::VehicleState before = v.state();
    v.step({speed, yaw}, dt, track);
    const sim::VehicleState& after = v.state();

    // Arc-length progress can never exceed the commanded (clamped) speed.
    const double clamped = std::clamp(speed, params.min_speed, params.max_speed);
    const double dx = track.signed_dx(before.x, after.x);
    const double dy = after.y - before.y;
    EXPECT_LE(std::hypot(dx, dy), clamped * dt + 1e-9);

    // Coordinates stay wrapped, heading stays clamped.
    EXPECT_GE(after.x, 0.0);
    EXPECT_LT(after.x, track.circumference());
    EXPECT_LE(std::abs(after.heading), params.max_heading + 1e-12);
    EXPECT_DOUBLE_EQ(after.speed, clamped);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpeedYawDtSweep, VehicleKinematicsP,
    ::testing::Combine(::testing::Values(0.0, 0.04, 0.12, 0.2, 0.5),
                       ::testing::Values(-0.6, -0.1, 0.0, 0.25, 1.0),
                       ::testing::Values(0.1, 0.5, 1.0)));

// ------------------------------------------ squashed-Gaussian bounds ------

class SquashedGaussianBoundsP
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SquashedGaussianBoundsP, SamplesStayWithinBoundsWithFiniteLogProb) {
  const auto [lo, hi] = GetParam();
  Rng rng(42);
  nn::SquashedGaussianPolicy pi(2, {8}, {lo}, {hi}, rng);
  for (int i = 0; i < 300; ++i) {
    auto s = pi.sample(nn::Matrix::row({rng.normal(), rng.normal()}), rng);
    EXPECT_GE(s.actions(0, 0), lo);
    EXPECT_LE(s.actions(0, 0), hi);
    EXPECT_TRUE(std::isfinite(s.log_prob[0]));
  }
}

INSTANTIATE_TEST_SUITE_P(BoundSweep, SquashedGaussianBoundsP,
                         ::testing::Values(std::pair{0.04, 0.08},
                                           std::pair{0.08, 0.14},
                                           std::pair{0.10, 0.20},
                                           std::pair{0.12, 0.25},
                                           std::pair{-1.0, 1.0},
                                           std::pair{-10.0, -5.0}));

// --------------------------------------------------- action grids ---------

class ActionGridP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ActionGridP, DecodeEncodeRoundTripForAnyGrid) {
  const auto [nl, na] = GetParam();
  std::vector<double> lin, ang;
  for (int i = 0; i < nl; ++i) lin.push_back(0.04 + 0.16 * i / std::max(1, nl - 1));
  for (int i = 0; i < na; ++i) ang.push_back(-0.25 + 0.5 * i / std::max(1, na - 1));
  rl::ActionGrid g(lin, ang);
  EXPECT_EQ(g.size(), static_cast<std::size_t>(nl * na));
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.encode(g.decode(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(GridSweep, ActionGridP,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 3},
                                           std::pair{5, 5}, std::pair{7, 2},
                                           std::pair{3, 9}));

// ---------------------------------------------- LaneWorld contracts -------

class LaneWorldInvariantsP : public ::testing::TestWithParam<int> {};

TEST_P(LaneWorldInvariantsP, RandomPolicyEpisodeInvariants) {
  const int learners = GetParam();
  auto sc = sim::cooperative_lane_change(learners);
  sim::LaneWorld world(sc.config);
  Rng rng(static_cast<unsigned>(learners));

  for (int ep = 0; ep < 3; ++ep) {
    world.reset(rng);
    EXPECT_EQ(world.num_learners(), learners);
    while (!world.done()) {
      std::vector<sim::TwistCmd> cmds;
      for (int k = 0; k < learners; ++k) {
        cmds.push_back({rng.uniform(0.04, 0.2), rng.uniform(-0.25, 0.25)});
      }
      auto r = world.step(cmds, rng);
      ASSERT_EQ(r.reward.size(), static_cast<std::size_t>(learners));
      for (double rew : r.reward) EXPECT_TRUE(std::isfinite(rew));
      for (int i = 0; i < world.num_vehicles(); ++i) {
        EXPECT_LE(std::abs(r.travel[static_cast<std::size_t>(i)]),
                  world.config().vehicle.max_speed * world.config().dt + 1e-9);
        EXPECT_EQ(world.high_level_obs(i).size(), world.high_level_obs_dim());
        for (double o : world.high_level_obs(i)) EXPECT_TRUE(std::isfinite(o));
      }
      if (r.collision) {
        EXPECT_FALSE(r.collided.empty());
        EXPECT_TRUE(r.done);
      }
    }
    EXPECT_LE(world.steps(), world.config().max_steps);
  }
}

INSTANTIATE_TEST_SUITE_P(LearnerCountSweep, LaneWorldInvariantsP,
                         ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------- replay buffers -------

class ReplayBufferCapacityP : public ::testing::TestWithParam<int> {};

TEST_P(ReplayBufferCapacityP, NeverExceedsCapacityAndSamplesValid) {
  const std::size_t cap = static_cast<std::size_t>(GetParam());
  rl::ReplayBuffer<int> buf(cap);
  Rng rng(7);
  for (int i = 0; i < 3 * GetParam() + 5; ++i) {
    buf.add(i);
    EXPECT_LE(buf.size(), cap);
    auto s = buf.sample(4, rng);
    for (const int* p : s) {
      EXPECT_GE(*p, 0);
      EXPECT_LE(*p, i);
      // Everything sampled must still be within the retention window.
      EXPECT_GT(*p, i - static_cast<int>(cap));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, ReplayBufferCapacityP,
                         ::testing::Values(1, 2, 7, 64, 1000));

// ------------------------------------------------------ schedules ---------

class LinearScheduleP
    : public ::testing::TestWithParam<std::tuple<double, double, long>> {};

TEST_P(LinearScheduleP, MonotoneAndBounded) {
  const auto [start, end, steps] = GetParam();
  rl::LinearSchedule s(start, end, steps);
  double prev = s.value(0);
  EXPECT_DOUBLE_EQ(prev, start);
  for (long t = 1; t <= steps + 10; ++t) {
    const double v = s.value(t);
    if (start >= end) {
      EXPECT_LE(v, prev + 1e-12);
    } else {
      EXPECT_GE(v, prev - 1e-12);
    }
    EXPECT_LE(v, std::max(start, end) + 1e-12);
    EXPECT_GE(v, std::min(start, end) - 1e-12);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.value(steps), end);
}

INSTANTIATE_TEST_SUITE_P(ScheduleSweep, LinearScheduleP,
                         ::testing::Values(std::tuple{1.0, 0.05, 100L},
                                           std::tuple{0.5, 0.5, 10L},
                                           std::tuple{0.1, 0.9, 7L},
                                           std::tuple{2.0, 0.0, 1L}));

// --------------------------------------------------------- MLP shapes -----

class MlpShapeP
    : public ::testing::TestWithParam<std::tuple<int, std::vector<std::size_t>, int>> {
};

TEST_P(MlpShapeP, ForwardBackwardShapesAndParamCount) {
  const auto [in, hidden, out] = GetParam();
  Rng rng(3);
  nn::Mlp net(static_cast<std::size_t>(in), hidden, static_cast<std::size_t>(out),
              rng);
  EXPECT_EQ(net.in_dim(), static_cast<std::size_t>(in));
  EXPECT_EQ(net.out_dim(), static_cast<std::size_t>(out));

  std::size_t expected = 0;
  std::size_t prev = static_cast<std::size_t>(in);
  for (std::size_t h : hidden) {
    expected += prev * h + h;
    prev = h;
  }
  expected += prev * static_cast<std::size_t>(out) + static_cast<std::size_t>(out);
  EXPECT_EQ(net.num_params(), expected);

  nn::Matrix x = nn::Matrix::xavier(5, static_cast<std::size_t>(in), rng);
  nn::Matrix y = net.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), static_cast<std::size_t>(out));
  nn::Matrix din = net.backward(nn::Matrix(5, static_cast<std::size_t>(out), 1.0));
  EXPECT_EQ(din.rows(), 5u);
  EXPECT_EQ(din.cols(), static_cast<std::size_t>(in));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, MlpShapeP,
    ::testing::Values(std::tuple{1, std::vector<std::size_t>{}, 1},
                      std::tuple{26, std::vector<std::size_t>{32}, 25},
                      std::tuple{18, std::vector<std::size_t>{32, 32}, 4},
                      std::tuple{8, std::vector<std::size_t>{16, 16, 16}, 2}));

// ------------------------------------------------------- softmax ----------

class SoftmaxScaleP : public ::testing::TestWithParam<double> {};

TEST_P(SoftmaxScaleP, DistributionInvariants) {
  Rng rng(5);
  nn::Matrix logits = nn::Matrix::xavier(6, 9, rng) * GetParam();
  nn::Matrix p = nn::softmax(logits);
  auto ent = nn::softmax_entropy(logits);
  for (std::size_t i = 0; i < 6; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_GE(p(i, j), 0.0);
      EXPECT_LE(p(i, j), 1.0);
      s += p(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-9);
    EXPECT_GE(ent[i], -1e-12);
    EXPECT_LE(ent[i], std::log(9.0) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(LogitScaleSweep, SoftmaxScaleP,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0, 1000.0));

// -------------------------------------------- lidar rotational sanity -----

class LidarBeamCountP : public ::testing::TestWithParam<int> {};

TEST_P(LidarBeamCountP, EmptyWorldAllMaxRangeAnyBeamCount) {
  sim::Track track({8.0, 0.35, 2});
  sim::VehicleParams p;
  std::vector<sim::Vehicle> vs;
  vs.emplace_back(p, sim::VehicleState{1.0, 0.0, 0.3, 0.1, 0.0});
  sim::LidarSensor lidar({GetParam(), 2.0, 0.0});
  auto scan = lidar.scan(vs[0], vs, 0, track);
  ASSERT_EQ(scan.size(), static_cast<std::size_t>(GetParam()));
  for (double r : scan) EXPECT_DOUBLE_EQ(r, 1.0);
}

INSTANTIATE_TEST_SUITE_P(BeamSweep, LidarBeamCountP,
                         ::testing::Values(1, 4, 16, 24, 64));

}  // namespace
}  // namespace hero
