// Tests for prioritized experience replay: sum-tree arithmetic, sampling
// proportionality, importance weights, and the PER-enabled DQN path.
#include <gtest/gtest.h>

#include <map>

#include "algos/dqn.h"
#include "rl/prioritized_replay.h"

namespace hero::rl {
namespace {

// ------------------------------------------------------------- SumTree ----

TEST(SumTree, TotalTracksUpdates) {
  SumTree tree(5);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  tree.set(0, 1.0);
  tree.set(3, 2.5);
  EXPECT_DOUBLE_EQ(tree.total(), 3.5);
  tree.set(0, 0.5);  // overwrite, not add
  EXPECT_DOUBLE_EQ(tree.total(), 3.0);
  EXPECT_DOUBLE_EQ(tree.priority(0), 0.5);
  EXPECT_DOUBLE_EQ(tree.priority(3), 2.5);
  EXPECT_DOUBLE_EQ(tree.priority(1), 0.0);
}

TEST(SumTree, FindLandsInCorrectLeaf) {
  SumTree tree(4);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 3.0);
  tree.set(3, 4.0);
  // Prefix sums: [0,1), [1,3), [3,6), [6,10).
  EXPECT_EQ(tree.find(0.5), 0u);
  EXPECT_EQ(tree.find(1.0), 1u);
  EXPECT_EQ(tree.find(2.99), 1u);
  EXPECT_EQ(tree.find(3.0), 2u);
  EXPECT_EQ(tree.find(9.99), 3u);
}

TEST(SumTree, NonPowerOfTwoCapacity) {
  SumTree tree(3);
  tree.set(0, 1.0);
  tree.set(2, 1.0);
  EXPECT_DOUBLE_EQ(tree.total(), 2.0);
  EXPECT_EQ(tree.find(1.5), 2u);
}

TEST(SumTree, RejectsOutOfRange) {
  SumTree tree(3);
  EXPECT_THROW(tree.set(3, 1.0), std::logic_error);
  EXPECT_THROW(tree.priority(3), std::logic_error);
  EXPECT_THROW(tree.set(0, -1.0), std::logic_error);
}

// ------------------------------------------------- PrioritizedReplay ------

TEST(PrioritizedReplay, NewItemsGetSampled) {
  PrioritizedReplayBuffer<int> buf(8, 0.6, 0.4);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) buf.add(i);
  auto s = buf.sample(64, rng);
  std::map<int, int> seen;
  for (std::size_t idx : s.indices) ++seen[buf.at(idx)];
  EXPECT_GE(seen.size(), 6u);  // near-uniform before any priority updates
}

TEST(PrioritizedReplay, HighTdErrorSampledMoreOften) {
  PrioritizedReplayBuffer<int> buf(4, 1.0, 0.4);  // α=1: fully proportional
  Rng rng(2);
  for (int i = 0; i < 4; ++i) buf.add(i);
  // Item 2 gets a much larger TD error.
  buf.update_priorities({0, 1, 2, 3}, {0.1, 0.1, 10.0, 0.1});
  std::map<std::size_t, int> counts;
  for (int trial = 0; trial < 200; ++trial) {
    auto s = buf.sample(8, rng);
    for (std::size_t idx : s.indices) ++counts[idx];
  }
  EXPECT_GT(counts[2], 5 * counts[0]);
  EXPECT_GT(counts[2], 5 * counts[3]);
}

TEST(PrioritizedReplay, WeightsNormalizedToMaxOne) {
  PrioritizedReplayBuffer<int> buf(8, 0.6, 0.7);
  Rng rng(3);
  for (int i = 0; i < 8; ++i) buf.add(i);
  buf.update_priorities({0, 1, 2, 3, 4, 5, 6, 7},
                        {0.1, 0.5, 3.0, 0.2, 0.9, 0.05, 1.5, 0.3});
  auto s = buf.sample(32, rng);
  double max_w = 0;
  for (double w : s.weights) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-12);
    max_w = std::max(max_w, w);
  }
  EXPECT_NEAR(max_w, 1.0, 1e-9);
}

TEST(PrioritizedReplay, RareItemsGetLargerWeights) {
  PrioritizedReplayBuffer<int> buf(4, 1.0, 1.0);  // full correction
  Rng rng(4);
  for (int i = 0; i < 4; ++i) buf.add(i);
  buf.update_priorities({0, 1, 2, 3}, {0.1, 0.1, 5.0, 0.1});
  // Sample until we see both a high- and a low-priority item.
  double w_high = -1, w_low = -1;
  for (int trial = 0; trial < 50 && (w_high < 0 || w_low < 0); ++trial) {
    auto s = buf.sample(16, rng);
    for (std::size_t k = 0; k < s.indices.size(); ++k) {
      if (s.indices[k] == 2) w_high = s.weights[k];
      if (s.indices[k] == 0) w_low = s.weights[k];
    }
  }
  ASSERT_GE(w_high, 0.0);
  ASSERT_GE(w_low, 0.0);
  EXPECT_GT(w_low, w_high);  // rarely-sampled items correct upward
}

TEST(PrioritizedReplay, OverwriteKeepsSizeBounded) {
  PrioritizedReplayBuffer<int> buf(4, 0.6, 0.4);
  for (int i = 0; i < 20; ++i) buf.add(i);
  EXPECT_EQ(buf.size(), 4u);
  Rng rng(5);
  auto s = buf.sample(16, rng);
  for (std::size_t idx : s.indices) EXPECT_GE(buf.at(idx), 16);
}

TEST(PrioritizedReplay, BetaAnneal) {
  PrioritizedReplayBuffer<int> buf(4, 0.6, 0.4);
  EXPECT_DOUBLE_EQ(buf.beta(), 0.4);
  buf.set_beta(1.0);
  EXPECT_DOUBLE_EQ(buf.beta(), 1.0);
}

// --------------------------------------------------- PER-enabled DQN ------

TEST(PrioritizedDqn, TrainsWithoutCrashing) {
  Rng rng(6);
  auto sc = sim::cooperative_lane_change();
  algos::DqnConfig cfg;
  cfg.prioritized = true;
  cfg.batch = 32;
  cfg.warmup_steps = 64;
  algos::IndependentDqnTrainer trainer(sc, cfg, rng);
  int eps = 0;
  trainer.train(5, rng, [&](int, const rl::EpisodeStats&) { ++eps; });
  EXPECT_EQ(eps, 5);
  auto cmds = trainer.act(trainer.world(), rng, false);
  EXPECT_EQ(cmds.size(), 3u);
}

}  // namespace
}  // namespace hero::rl
