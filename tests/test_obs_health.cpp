// Unit tests for the run-health layer (obs/phase.h, obs/alerts.h,
// obs/json.h, and the composed snapshot in obs/obs.h): phase-tree nesting
// and cross-thread merging, rolling-snapshot atomicity under concurrent
// readers, alert-rule firing (including injected NaN gradients firing
// exactly one alert), and manifest round-trips through the JSON reader.
//
// The obs subsystems are process-global; each test that enables one
// restores the disabled default and resets accumulated state on exit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/alerts.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/phase.h"

namespace hero::obs {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

const PhaseStat* find_stat(const std::vector<PhaseStat>& stats,
                           const std::string& name) {
  for (const auto& s : stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

struct PhaseGuard {
  PhaseGuard() {
    PhaseRegistry::instance().reset();
    set_phases_enabled(true);
  }
  ~PhaseGuard() {
    set_phases_enabled(false);
    PhaseRegistry::instance().reset();
  }
};

// ---------------------------------------------------------- phase tree ----

TEST(PhaseTimer, NestedScopesBuildATree) {
  PhaseGuard guard;
  {
    OBS_PHASE("pt_root");
    {
      OBS_PHASE("pt_child_a");
    }
    {
      OBS_PHASE("pt_child_a");
    }
    {
      OBS_PHASE("pt_child_b");
    }
  }
  const auto stats = PhaseRegistry::instance().snapshot();
  const PhaseStat* root = find_stat(stats, "pt_root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 1u);
  const PhaseStat* a = find_stat(root->children, "pt_child_a");
  const PhaseStat* b = find_stat(root->children, "pt_child_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count, 2u);
  EXPECT_EQ(b->count, 1u);
  // The enclosing scope's time covers its children's.
  EXPECT_GE(root->total_us, a->total_us + b->total_us);
}

TEST(PhaseTimer, DisabledScopesRecordNothing) {
  PhaseRegistry::instance().reset();
  set_phases_enabled(false);
  {
    OBS_PHASE("pt_disabled");
  }
  const auto stats = PhaseRegistry::instance().snapshot();
  EXPECT_EQ(find_stat(stats, "pt_disabled"), nullptr);
}

TEST(PhaseTimer, SameNamePhasesMergeAcrossThreads) {
  PhaseGuard guard;
  auto work = [] {
    OBS_PHASE("pt_xthread");
    {
      OBS_PHASE("pt_xthread_inner");
    }
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  work();  // and once on this thread

  const auto stats = PhaseRegistry::instance().snapshot();
  const PhaseStat* root = find_stat(stats, "pt_xthread");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 3u);
  const PhaseStat* inner = find_stat(root->children, "pt_xthread_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
}

TEST(PhaseTimer, JsonExportParsesAndCarriesCounts) {
  PhaseGuard guard;
  {
    OBS_PHASE("pt_json_root");
    {
      OBS_PHASE("pt_json_leaf");
    }
  }
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(PhaseRegistry::instance().json(), doc, &err)) << err;
  const JsonValue* root = doc.find("pt_json_root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->get_number("count", -1), 1.0);
  const JsonValue* children = root->find("children");
  ASSERT_NE(children, nullptr);
  const JsonValue* leaf = children->find("pt_json_leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->get_number("count", -1), 1.0);
}

// --------------------------------------------------------- alert rules ----

AlertConfig tight_config() {
  AlertConfig cfg;
  cfg.cooldown_episodes = 4;
  cfg.grad_window = 8;
  cfg.grad_min_samples = 4;
  cfg.throughput_window = 4;
  cfg.throughput_min_episodes = 5;
  cfg.replay_starvation_episodes = 5;
  cfg.opp_window = 8;
  cfg.opp_min_episodes = 4;
  cfg.thrash_consecutive = 3;
  return cfg;
}

EpisodeHealth healthy_episode(long long ep) {
  EpisodeHealth h;
  h.episode = ep;
  h.reward = 1.0;
  h.steps = 50;
  h.have_updates = true;
  h.updated_this_episode = true;
  h.critic_loss = 0.5;
  h.critic_grad_norm = 1.0;
  h.actor_grad_norm = 1.0;
  h.have_replay = true;
  return h;
}

struct AlertGuard {
  explicit AlertGuard(const AlertConfig& cfg) { AlertEngine::instance().reset(cfg); }
  ~AlertGuard() { AlertEngine::instance().reset(); }
};

TEST(AlertEngine, HealthyRunStaysHealthy) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  for (long long ep = 0; ep < 20; ++ep) eng.observe_episode(healthy_episode(ep));
  EXPECT_TRUE(eng.healthy());
  EXPECT_TRUE(eng.alerts().empty());

  JsonValue doc;
  ASSERT_TRUE(JsonValue::parse(eng.health_json(), doc, nullptr));
  EXPECT_EQ(doc.get_string("verdict", ""), "healthy");
  EXPECT_EQ(doc.get_number("episodes", -1), 20.0);
}

TEST(AlertEngine, InjectedNanGradientFiresExactlyOneAlert) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  long long ep = 0;
  for (; ep < 6; ++ep) eng.observe_episode(healthy_episode(ep));

  auto sick = healthy_episode(ep++);
  sick.critic_grad_norm = std::numeric_limits<double>::quiet_NaN();
  eng.observe_episode(sick);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "non_finite_grad");
  EXPECT_FALSE(eng.healthy());

  // Cooldown: the immediately following sick episodes must not re-fire.
  for (int i = 0; i < 3; ++i) {
    auto again = healthy_episode(ep++);
    again.actor_grad_norm = std::numeric_limits<double>::infinity();
    eng.observe_episode(again);
  }
  EXPECT_EQ(eng.alerts().size(), 1u);

  // After the cooldown expires the rule may fire again.
  for (int i = 0; i < 4; ++i) eng.observe_episode(healthy_episode(ep++));
  auto later = healthy_episode(ep++);
  later.critic_grad_norm = std::numeric_limits<double>::quiet_NaN();
  eng.observe_episode(later);
  EXPECT_EQ(eng.alerts().size(), 2u);
}

TEST(AlertEngine, NanLossFires) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  for (long long ep = 0; ep < 4; ++ep) eng.observe_episode(healthy_episode(ep));
  auto sick = healthy_episode(4);
  sick.critic_loss = std::numeric_limits<double>::quiet_NaN();
  eng.observe_episode(sick);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "nan_loss");
}

TEST(AlertEngine, ExplodingGradComparesToTrailingMean) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  long long ep = 0;
  for (; ep < 6; ++ep) eng.observe_episode(healthy_episode(ep));
  auto sick = healthy_episode(ep++);
  sick.critic_grad_norm = 100.0;  // 100x the trailing mean of 1.0 (factor 50)
  eng.observe_episode(sick);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "exploding_grad");
  EXPECT_FALSE(eng.alerts()[0].wallclock);
}

TEST(AlertEngine, ThroughputCollapseIsWallclockFlagged) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  long long ep = 0;
  for (; ep < 6; ++ep) {
    auto h = healthy_episode(ep);
    h.steps_per_sec = 1000.0;
    eng.observe_episode(h);
  }
  auto slow = healthy_episode(ep++);
  slow.steps_per_sec = 10.0;  // < 0.25 x trailing mean of 1000
  eng.observe_episode(slow);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "throughput_collapse");
  EXPECT_TRUE(eng.alerts()[0].wallclock);
}

TEST(AlertEngine, ReplayStarvationNeedsAReplayPathAndNoUpdates) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  for (long long ep = 0; ep < 6; ++ep) {
    EpisodeHealth h;
    h.episode = ep;
    h.reward = 1.0;
    h.steps = 50;
    h.have_replay = true;  // learner exists but never updated
    eng.observe_episode(h);
  }
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "replay_starvation");
}

TEST(AlertEngine, BaselineEpisodesWithoutUpdateFieldsStayQuiet) {
  // Baseline trainers report only reward/steps (algos::record_episode);
  // update- and replay-keyed rules must stay dormant on those samples.
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  for (long long ep = 0; ep < 40; ++ep) {
    EpisodeHealth h;
    h.episode = ep;
    h.reward = -2.0;
    h.steps = 30;
    eng.observe_episode(h);
  }
  EXPECT_TRUE(eng.healthy()) << eng.health_json();
}

TEST(AlertEngine, OpponentAccuracyCollapseFires) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  long long ep = 0;
  for (; ep < 6; ++ep) {
    auto h = healthy_episode(ep);
    h.opponent_predictions = 100;
    h.opponent_accuracy = 0.8;
    eng.observe_episode(h);
  }
  auto sick = healthy_episode(ep++);
  sick.opponent_predictions = 100;
  sick.opponent_accuracy = 0.1;  // < 0.5 x trailing peak of 0.8
  eng.observe_episode(sick);
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "opponent_collapse");
}

TEST(AlertEngine, OptionThrashNeedsConsecutiveEpisodes) {
  AlertGuard guard(tight_config());
  auto& eng = AlertEngine::instance();
  long long ep = 0;
  auto thrashy = [&] {
    auto h = healthy_episode(ep++);
    h.option_switch_rate = 0.9;
    return h;
  };
  eng.observe_episode(thrashy());
  eng.observe_episode(thrashy());
  EXPECT_TRUE(eng.alerts().empty());  // run of 2 < consecutive threshold 3
  auto calm = healthy_episode(ep++);
  calm.option_switch_rate = 0.1;
  eng.observe_episode(calm);  // resets the run
  eng.observe_episode(thrashy());
  eng.observe_episode(thrashy());
  EXPECT_TRUE(eng.alerts().empty());
  eng.observe_episode(thrashy());
  ASSERT_EQ(eng.alerts().size(), 1u);
  EXPECT_EQ(eng.alerts()[0].rule, "option_thrash");
}

// ------------------------------------------------- manifest round-trip ----

TEST(RunManifest, RoundTripsThroughSnapshotJson) {
  RunManifest m;
  m.tool = "test_\"tool\"";  // exercises string escaping
  m.git_sha = "abc123def456";
  m.build_type = "Release";
  m.build_flags = "-O2 -fno-math-errno";
  m.hostname = "unit-host";
  m.config_digest = config_digest("seed=7 episodes=2");
  m.seed = 1234567890123LL;
  m.num_workers = 4;
  m.num_envs = 8;
  m.batch_envs = 16;
  set_run_manifest(m);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(manifest_json(), doc, &err)) << err;
  EXPECT_EQ(doc.get_string("tool", ""), "test_\"tool\"");
  EXPECT_EQ(doc.get_string("git_sha", ""), "abc123def456");
  EXPECT_EQ(doc.get_string("build_flags", ""), "-O2 -fno-math-errno");
  EXPECT_EQ(doc.get_string("hostname", ""), "unit-host");
  EXPECT_EQ(doc.get_string("config_digest", ""), m.config_digest);
  EXPECT_EQ(doc.get_number("seed", 0), 1234567890123.0);
  EXPECT_EQ(doc.get_number("num_workers", 0), 4.0);
  EXPECT_EQ(doc.get_number("batch_envs", 0), 16.0);

  set_run_manifest(RunManifest{});
}

TEST(RunManifest, ConfigDigestIsStableAndFlagSensitive) {
  const std::string a = config_digest("seed=1 episodes=2");
  EXPECT_EQ(a, config_digest("seed=1 episodes=2"));
  EXPECT_NE(a, config_digest("seed=2 episodes=2"));
  EXPECT_EQ(a.size(), 16u);  // 64-bit FNV-1a as hex
}

// ------------------------------------------------------------ snapshot ----

struct MetricsGuard {
  MetricsGuard() {
    set_metrics_enabled(true);
    PhaseRegistry::instance().reset();
    AlertEngine::instance().reset();
  }
  ~MetricsGuard() {
    set_metrics_enabled(false);
    set_rolling_snapshot("", 0);
    Registry::instance().reset_values();
    AlertEngine::instance().reset();
  }
};

TEST(Snapshot, ComposedDocumentParsesWithAllSections) {
  MetricsGuard guard;
  Registry::instance().counter("test.health.counter").inc(3);

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(snapshot_json(), doc, &err)) << err;
  ASSERT_NE(doc.find("manifest"), nullptr);
  ASSERT_NE(doc.find("counters"), nullptr);
  ASSERT_NE(doc.find("gauges"), nullptr);
  ASSERT_NE(doc.find("phases"), nullptr);
  ASSERT_NE(doc.find("health"), nullptr);
  EXPECT_EQ(doc.find("counters")->get_number("test.health.counter", -1), 3.0);
  // The silent-data-loss gauges ride in every snapshot.
  EXPECT_NE(doc.find("gauges")->find("obs.trace.dropped"), nullptr);
  EXPECT_NE(doc.find("gauges")->find("obs.telemetry.write_errors"), nullptr);
  EXPECT_EQ(doc.find("health")->get_string("verdict", ""), "healthy");
}

TEST(Snapshot, RollingWritesAreAtomicUnderConcurrentReaders) {
  MetricsGuard guard;
  const std::string path = temp_path("hero_test_rolling_snapshot.json");
  std::filesystem::remove(path);
  set_rolling_snapshot(path, 1);

  std::atomic<bool> stop{false};
  std::atomic<int> parsed{0};
  std::atomic<int> failed{0};
  auto reader = [&] {
    while (!stop.load()) {
      std::string text = slurp(path);
      if (text.empty()) continue;  // not created yet
      JsonValue doc;
      if (JsonValue::parse(text, doc, nullptr)) {
        ++parsed;
      } else {
        ++failed;  // a torn write would land here
      }
    }
  };
  std::thread r1(reader), r2(reader);

  const std::uint64_t before = rolling_snapshots_written();
  for (int i = 0; i < 200; ++i) {
    Registry::instance().counter("test.rolling.episodes").inc();
    note_episode();
  }
  stop.store(true);
  r1.join();
  r2.join();

  EXPECT_EQ(rolling_snapshots_written() - before, 200u);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(parsed.load(), 0);

  // The final document on disk is complete and carries the last tick.
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(slurp(path), doc, &err)) << err;
  EXPECT_EQ(doc.find("counters")->get_number("test.rolling.episodes", -1), 200.0);
  std::filesystem::remove(path);
}

TEST(Snapshot, EveryNThrottlesRollingWrites) {
  MetricsGuard guard;
  const std::string path = temp_path("hero_test_rolling_every.json");
  std::filesystem::remove(path);
  set_rolling_snapshot(path, 4);
  const std::uint64_t before = rolling_snapshots_written();
  for (int i = 0; i < 10; ++i) note_episode();
  EXPECT_EQ(rolling_snapshots_written() - before, 2u);  // at ticks 4 and 8
  std::filesystem::remove(path);
}

TEST(Snapshot, WriteAtomicProducesAParseableFileAndNoTmpLeftover) {
  MetricsGuard guard;
  const std::string path = temp_path("hero_test_snapshot_once.json");
  ASSERT_TRUE(write_snapshot_atomic(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(slurp(path), doc, &err)) << err;
  std::filesystem::remove(path);
}

// ----------------------------------------------------------- JSON reader --

TEST(JsonReader, ParsesScalarsContainersAndEscapes) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(
      R"({"a": 1.5, "b": "x\"yA", "c": [1, 2, 3], "d": {"e": true}, "f": null})",
      doc, &err))
      << err;
  EXPECT_EQ(doc.get_number("a", 0), 1.5);
  EXPECT_EQ(doc.get_string("b", ""), "x\"yA");
  ASSERT_NE(doc.find("c"), nullptr);
  ASSERT_EQ(doc.find("c")->items.size(), 3u);
  EXPECT_EQ(doc.find("c")->items[2].number_or(0), 3.0);
  EXPECT_TRUE(doc.find("d")->find("e")->bool_or(false));
  EXPECT_TRUE(doc.find("f")->is_null());
}

TEST(JsonReader, RejectsMalformedAndTrailingGarbage) {
  JsonValue doc;
  EXPECT_FALSE(JsonValue::parse("{\"a\": }", doc, nullptr));
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", doc, nullptr));
  EXPECT_FALSE(JsonValue::parse("", doc, nullptr));
  EXPECT_FALSE(JsonValue::parse("[1, 2", doc, nullptr));
}

}  // namespace
}  // namespace hero::obs
